"""Product quantization codec and ADC tables: the paper's RC#7.

Product quantization (Jégou et al., the paper's [24]) splits each
``d``-dimensional vector into ``m`` disjoint sub-vectors and trains an
independent ``c_pq``-codeword codebook per sub-space, so a vector is
encoded in ``m * log2(c_pq)`` bits.

At search time, an IVF_PQ index computes *asymmetric distances* (ADC):
for a query ``q`` it first builds a ``(m, c_pq)`` **precomputed table**
of squared distances between each query sub-vector and each codeword,
then scores every encoded vector with ``m`` table lookups.  The paper
finds (Sec. VII-B) that PASE builds this table "straightforwardly"
while Faiss "divides the task into computing L2 norms and inner
product", caching the codeword norms at *training* time — root cause
RC#7.  Both table builders are implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.distance import l2_sqr, squared_norms
from repro.common.kmeans import faiss_kmeans, pase_kmeans


@dataclass(slots=True)
class PQCodebook:
    """Trained product-quantization codebooks.

    Attributes:
        codebooks: ``(m, c_pq, d_sub)`` float32 codeword array.
        codeword_sq_norms: ``(m, c_pq)`` float32 cached ``||c||^2`` —
            computed once at training time; the optimized ADC-table
            path (RC#7) relies on this cache existing.
    """

    codebooks: np.ndarray
    codeword_sq_norms: np.ndarray

    @property
    def m(self) -> int:
        """Number of sub-spaces."""
        return int(self.codebooks.shape[0])

    @property
    def c_pq(self) -> int:
        """Codewords per sub-space."""
        return int(self.codebooks.shape[1])

    @property
    def d_sub(self) -> int:
        """Dimensions per sub-vector."""
        return int(self.codebooks.shape[2])

    @property
    def dim(self) -> int:
        """Full vector dimensionality ``m * d_sub``."""
        return self.m * self.d_sub

    def nbytes(self) -> int:
        """Raw size of the codebook payload in bytes."""
        return int(self.codebooks.nbytes)


def split_subvectors(vectors: np.ndarray, m: int) -> np.ndarray:
    """Reshape ``(n, d)`` vectors into ``(n, m, d_sub)`` sub-vectors.

    Raises:
        ValueError: if ``d`` is not divisible by ``m``.
    """
    arr = np.ascontiguousarray(vectors, dtype=np.float32)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    n, d = arr.shape
    if d % m != 0:
        raise ValueError(f"dimension {d} is not divisible by m={m} sub-vectors")
    return arr.reshape(n, m, d // m)


def train_codebook(
    training_data: np.ndarray,
    m: int,
    c_pq: int = 256,
    max_iterations: int = 10,
    seed: int | None = None,
    style: str = "faiss",
) -> PQCodebook:
    """Train per-sub-space codebooks with k-means.

    Args:
        training_data: ``(n, d)`` float32 sample.
        m: number of sub-vector partitions (paper's ``m``).
        c_pq: codewords per sub-space (paper's ``c_pq``, default 256 so
            each code fits one byte).
        max_iterations: k-means iterations per sub-space.
        seed: RNG seed.
        style: ``"faiss"`` or ``"pase"`` — selects which k-means
            implementation trains the codebooks (RC#5 applies inside
            PQ training too).
    """
    if c_pq < 2 or c_pq > 256:
        raise ValueError(f"c_pq must be in [2, 256] for uint8 codes, got {c_pq}")
    subs = split_subvectors(training_data, m)
    n = subs.shape[0]
    if n < c_pq:
        raise ValueError(f"need at least c_pq={c_pq} training rows, got {n}")
    codebooks = np.empty((m, c_pq, subs.shape[2]), dtype=np.float32)
    for j in range(m):
        sub_seed = None if seed is None else seed + j
        if style == "faiss":
            result = faiss_kmeans(subs[:, j, :], c_pq, max_iterations, seed=sub_seed)
        elif style == "pase":
            result = pase_kmeans(subs[:, j, :], c_pq, max_iterations, seed=sub_seed)
        else:
            raise ValueError(f"unknown k-means style: {style!r}")
        codebooks[j] = result.centroids
    norms = np.stack([squared_norms(codebooks[j]) for j in range(m)])
    return PQCodebook(codebooks=codebooks, codeword_sq_norms=norms)


def encode(codebook: PQCodebook, vectors: np.ndarray) -> np.ndarray:
    """Encode vectors to ``(n, m)`` uint8 codes (nearest codeword per sub-space)."""
    subs = split_subvectors(vectors, codebook.m)
    n = subs.shape[0]
    codes = np.empty((n, codebook.m), dtype=np.uint8)
    for j in range(codebook.m):
        cb = codebook.codebooks[j]
        # ||s - c||^2 = ||s||^2 + ||c||^2 - 2 s.c; ||s||^2 is constant
        # per row for the argmin, so only the last two terms matter.
        cross = subs[:, j, :] @ cb.T
        scores = codebook.codeword_sq_norms[j][None, :] - 2.0 * cross
        codes[:, j] = np.argmin(scores, axis=1).astype(np.uint8)
    return codes


def decode(codebook: PQCodebook, codes: np.ndarray) -> np.ndarray:
    """Reconstruct approximate vectors from codes."""
    codes = np.atleast_2d(np.asarray(codes, dtype=np.uint8))
    if codes.shape[1] != codebook.m:
        raise ValueError(f"codes have {codes.shape[1]} sub-codes, codebook has m={codebook.m}")
    n = codes.shape[0]
    out = np.empty((n, codebook.dim), dtype=np.float32)
    d_sub = codebook.d_sub
    for j in range(codebook.m):
        out[:, j * d_sub : (j + 1) * d_sub] = codebook.codebooks[j][codes[:, j]]
    return out


def naive_adc_table(codebook: PQCodebook, query: np.ndarray) -> np.ndarray:
    """PASE-style precomputed table: one ``fvec_L2sqr`` per cell.

    Computes the ``(m, c_pq)`` table of squared distances between each
    query sub-vector and each codeword with a straightforward double
    loop — the implementation the paper attributes to PASE IVF_PQ
    (Sec. VII-B2).
    """
    q_subs = split_subvectors(query, codebook.m)[0]
    table = np.empty((codebook.m, codebook.c_pq), dtype=np.float32)
    for j in range(codebook.m):
        q_sub = q_subs[j]
        cb = codebook.codebooks[j]
        for c in range(codebook.c_pq):
            table[j, c] = l2_sqr(q_sub, cb[c])
    return table


def optimized_adc_table(codebook: PQCodebook, query: np.ndarray) -> np.ndarray:
    """Faiss-style precomputed table: norms + inner product (RC#7).

    Decomposes ``||q_sub - c||^2`` into ``||q_sub||^2 + ||c||^2 - 2
    q_sub.c``.  The codeword norms ``||c||^2`` were cached at training
    time (:attr:`PQCodebook.codeword_sq_norms`), so per query only the
    inner products — one small matmul per sub-space — remain.
    """
    q_subs = split_subvectors(query, codebook.m)[0]
    q_sq = np.einsum("ij,ij->i", q_subs, q_subs)
    table = np.empty((codebook.m, codebook.c_pq), dtype=np.float32)
    for j in range(codebook.m):
        cross = codebook.codebooks[j] @ q_subs[j]
        table[j] = q_sq[j] + codebook.codeword_sq_norms[j] - 2.0 * cross
    np.maximum(table, 0.0, out=table)
    return table


def adc_distances(table: np.ndarray, codes: np.ndarray) -> np.ndarray:
    """Score encoded vectors against a precomputed ADC table.

    ``distance(code) = sum_j table[j, code[j]]`` — ``m`` lookups per
    candidate, the standard IVF_PQ scan kernel.
    """
    codes = np.atleast_2d(np.asarray(codes, dtype=np.uint8))
    m = table.shape[0]
    if codes.shape[1] != m:
        raise ValueError(f"codes have {codes.shape[1]} sub-codes, table has m={m}")
    return table[np.arange(m)[None, :], codes].sum(axis=1, dtype=np.float32)


def adc_distance_single(table: np.ndarray, code: np.ndarray) -> float:
    """ADC distance for one code row (tuple-at-a-time path used by PASE)."""
    total = 0.0
    for j in range(table.shape[0]):
        total += float(table[j, code[j]])
    return total
