"""Dataset registry and synthetic workload generators.

The paper evaluates on six public datasets (Table I): SIFT1M, GIST1M,
Deep1M, SIFT10M, Deep10M and TURING10M.  Those corpora are not
shipped with this reproduction, so the registry generates *seeded
synthetic stand-ins* with the same dimensionality and a clustered
(Gaussian-mixture) structure, scaled down to laptop size.  Every gap
the paper reports is a ratio between two implementations of the same
algorithm on the same data, so preserving ``d`` and the cluster
structure — while scaling ``n`` — preserves the comparisons' shape.
See DESIGN.md §2 for the substitution rationale.

If real ``.fvecs``/``.ivecs`` files are available, :func:`read_fvecs`
and :func:`read_ivecs` load them and :func:`Dataset.from_arrays` wraps
them in the same interface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.common.distance import l2_sqr_batch
from repro.common.heap import exact_topk
from repro.common.rng import derive_seed, make_rng


@dataclass(frozen=True, slots=True)
class DatasetProfile:
    """Static description of one of the paper's datasets (Table I)."""

    name: str
    dim: int
    paper_n: int
    paper_queries: int
    default_scale: float
    #: paper's default number of sub-vectors m for IVF_PQ (Table II)
    default_m: int
    #: number of mixture components used by the synthetic generator
    mixture_components: int = 64

    def scaled_n(self, scale: float | None = None) -> int:
        """Base-vector count after applying ``scale`` (default profile scale)."""
        s = self.default_scale if scale is None else scale
        return max(int(round(self.paper_n * s)), 1000)

    def scaled_queries(self, scale: float | None = None) -> int:
        """Query count after scaling, clamped to a useful minimum."""
        s = self.default_scale if scale is None else scale
        return int(min(max(round(self.paper_queries * s * 10), 20), 200))


#: The six datasets of the paper's Table I.  ``default_scale`` keeps the
#: 10M-class datasets larger than the 1M-class ones so size-dependent
#: effects keep their relative ordering.
PROFILES: dict[str, DatasetProfile] = {
    "sift1m": DatasetProfile("sift1m", 128, 1_000_000, 10_000, 5e-3, 16),
    "gist1m": DatasetProfile("gist1m", 960, 1_000_000, 1_000, 4e-3, 60),
    "deep1m": DatasetProfile("deep1m", 256, 1_000_000, 1_000, 5e-3, 16),
    "sift10m": DatasetProfile("sift10m", 128, 10_000_000, 10_000, 8e-4, 16),
    "deep10m": DatasetProfile("deep10m", 96, 10_000_000, 10_000, 8e-4, 12),
    "turing10m": DatasetProfile("turing10m", 100, 10_000_000, 10_000, 8e-4, 10),
}

#: Dataset order used by the paper's figures.
PAPER_ORDER = ["sift1m", "gist1m", "deep1m", "sift10m", "deep10m", "turing10m"]


@dataclass(slots=True)
class Dataset:
    """A loaded workload: base vectors, query vectors, lazy ground truth."""

    name: str
    base: np.ndarray  # (n, d) float32
    queries: np.ndarray  # (nq, d) float32
    _ground_truth: np.ndarray | None = field(default=None, repr=False)
    _ground_truth_k: int = 0

    @property
    def n(self) -> int:
        """Number of base vectors."""
        return int(self.base.shape[0])

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return int(self.base.shape[1])

    @property
    def n_queries(self) -> int:
        """Number of query vectors."""
        return int(self.queries.shape[0])

    def default_clusters(self) -> int:
        """Paper convention: about sqrt(n) IVF clusters for large data."""
        return max(int(round(math.sqrt(self.n))), 4)

    def ground_truth(self, k: int = 100) -> np.ndarray:
        """Exact top-``k`` neighbor ids per query, ``(nq, k)`` int64.

        Computed by brute force on first use and cached; recomputed if a
        larger ``k`` is requested later.
        """
        if self._ground_truth is None or self._ground_truth_k < k:
            self._ground_truth = self._compute_ground_truth(k)
            self._ground_truth_k = k
        return self._ground_truth[:, :k]

    def _compute_ground_truth(self, k: int) -> np.ndarray:
        k = min(k, self.n)
        out = np.empty((self.n_queries, k), dtype=np.int64)
        # Chunk queries to bound the (chunk, n) distance matrix.
        chunk = max(1, (1 << 22) // max(self.n, 1))
        for start in range(0, self.n_queries, chunk):
            stop = min(start + chunk, self.n_queries)
            dists = l2_sqr_batch(self.queries[start:stop], self.base)
            for row in range(stop - start):
                nbrs = exact_topk(dists[row], k)
                out[start + row] = [nb.vector_id for nb in nbrs]
        return out

    @classmethod
    def from_arrays(
        cls, name: str, base: np.ndarray, queries: np.ndarray
    ) -> "Dataset":
        """Wrap pre-loaded arrays (e.g. real fvecs data) as a Dataset."""
        base = np.ascontiguousarray(base, dtype=np.float32)
        queries = np.ascontiguousarray(queries, dtype=np.float32)
        if base.ndim != 2 or queries.ndim != 2:
            raise ValueError("base and queries must be 2-D arrays")
        if base.shape[1] != queries.shape[1]:
            raise ValueError(
                f"dimension mismatch: base d={base.shape[1]}, queries d={queries.shape[1]}"
            )
        return cls(name=name, base=base, queries=queries)


def generate_clustered(
    n: int,
    dim: int,
    n_components: int,
    seed: int,
    spread: float = 0.25,
) -> np.ndarray:
    """Sample ``n`` vectors from a seeded Gaussian mixture.

    Component means are drawn uniformly from the unit hypercube and
    points scatter around them with standard deviation ``spread`` —
    enough cluster structure for IVF partitioning to behave like it
    does on real embedding corpora.
    """
    if n <= 0 or dim <= 0 or n_components <= 0:
        raise ValueError("n, dim and n_components must all be positive")
    rng = make_rng(seed)
    means = rng.uniform(0.0, 1.0, size=(n_components, dim)).astype(np.float32)
    component = rng.integers(0, n_components, size=n)
    noise = rng.normal(0.0, spread, size=(n, dim)).astype(np.float32)
    return means[component] + noise


def load_dataset(
    name: str, scale: float | None = None, seed: int | None = None
) -> Dataset:
    """Generate the synthetic stand-in for one of the paper's datasets.

    Args:
        name: profile key — one of :data:`PAPER_ORDER` (case-insensitive).
        scale: fraction of the paper's vector count to generate; the
            profile default keeps runs laptop-sized.
        seed: top-level seed; base and query streams are derived from it.

    Queries are drawn from the *same mixture* as the base vectors (real
    benchmark queries are held-out corpus samples).
    """
    key = name.lower()
    if key not in PROFILES:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown dataset {name!r}; known: {known}")
    profile = PROFILES[key]
    base_seed = derive_seed(seed if seed is not None else 0, key, "base")
    query_seed = derive_seed(seed if seed is not None else 0, key, "query")
    n = profile.scaled_n(scale)
    nq = profile.scaled_queries(scale)
    base = generate_clustered(n, profile.dim, profile.mixture_components, base_seed)
    queries = generate_clustered(nq, profile.dim, profile.mixture_components, query_seed)
    return Dataset(name=key, base=base, queries=queries)


def tiny_dataset(
    n: int = 500, dim: int = 16, n_queries: int = 10, seed: int = 7
) -> Dataset:
    """A very small clustered dataset for unit tests."""
    base = generate_clustered(n, dim, n_components=16, seed=derive_seed(seed, "b"))
    queries = generate_clustered(n_queries, dim, n_components=16, seed=derive_seed(seed, "q"))
    return Dataset(name=f"tiny-{n}x{dim}", base=base, queries=queries)


def read_fvecs(path: str | Path, max_rows: int | None = None) -> np.ndarray:
    """Read a ``.fvecs`` file (the format SIFT/GIST corpora ship in).

    Each record is ``int32 d`` followed by ``d`` float32 components.
    """
    raw = np.fromfile(str(path), dtype=np.int32)
    if raw.size == 0:
        raise ValueError(f"empty fvecs file: {path}")
    dim = int(raw[0])
    if dim <= 0:
        raise ValueError(f"corrupt fvecs file {path}: leading dim {dim}")
    record = dim + 1
    if raw.size % record != 0:
        raise ValueError(f"corrupt fvecs file {path}: size not a multiple of {record}")
    mat = raw.reshape(-1, record)
    if max_rows is not None:
        mat = mat[:max_rows]
    return mat[:, 1:].view(np.float32).copy()


def read_ivecs(path: str | Path, max_rows: int | None = None) -> np.ndarray:
    """Read a ``.ivecs`` file (ground-truth format of the SIFT corpora)."""
    raw = np.fromfile(str(path), dtype=np.int32)
    if raw.size == 0:
        raise ValueError(f"empty ivecs file: {path}")
    dim = int(raw[0])
    if dim <= 0:
        raise ValueError(f"corrupt ivecs file {path}: leading dim {dim}")
    record = dim + 1
    if raw.size % record != 0:
        raise ValueError(f"corrupt ivecs file {path}: size not a multiple of {record}")
    mat = raw.reshape(-1, record)
    if max_rows is not None:
        mat = mat[:max_rows]
    return mat[:, 1:].copy()
