"""Span-based tracing: real timelines behind the category profiler.

The :class:`~repro.common.profiling.Profiler` aggregates time by
section path — ideal for paper-style breakdown tables, useless for
answering "what happened *when*".  A :class:`Tracer` records the other
half: every section entry becomes a :class:`Span` with a real start
and end timestamp, a deterministic id, and a parent link, so exports
render the actual execution timeline instead of a synthetic layout.

The two are designed to run together: ``Profiler(tracer=tracer)``
makes every ``profiler.section(name)`` also open/close a span, reusing
the section's own ``perf_counter`` reads so the added cost per section
is one object allocation and two list operations.  Disabled tracers
(``enabled=False``) cost nothing — ``span()`` hands back a shared
no-op context manager, and an attached disabled tracer is never
called from the profiler hot path.

Spans carry optional point-in-time :class:`SpanEvent` annotations
(``tracer.event("cache-miss", blkno=17)``) which export as Chrome
instant events.
"""

from __future__ import annotations

import json
import time
from typing import Any, Iterator

#: Default bound on retained spans; entries past it are counted in
#: ``Tracer.dropped_spans`` instead of retained (an OOM guard for
#: tracing long loops without ``reset()``).
DEFAULT_MAX_SPANS = 1_000_000

#: Span bound for always-on capture paths (auto_explain): statements
#: crossing the slow-query threshold trace with this much smaller cap,
#: so a pathological query can't balloon the serving process the way
#: an explicit EXPLAIN (ANALYZE, TRACE) is allowed to.  The RC
#: attribution degrades gracefully — dropped spans only lose leaf
#: detail, the section totals still reconcile.
AUTO_CAPTURE_MAX_SPANS = 50_000


class SpanEvent:
    """A point-in-time annotation attached to a span."""

    __slots__ = ("name", "ts", "attrs")

    def __init__(self, name: str, ts: float, attrs: dict[str, Any]) -> None:
        self.name = name
        self.ts = ts
        self.attrs = attrs


class Span:
    """One traced region: a named interval with parent linkage.

    ``span_id`` values are sequential from 1 in span-open order, and
    ``parent_id`` is 0 for roots — deterministic for a given execution,
    so trace-diffing across runs lines spans up by id.
    """

    __slots__ = ("span_id", "parent_id", "name", "path", "start", "end", "events")

    def __init__(
        self,
        span_id: int,
        parent_id: int,
        name: str,
        path: tuple[str, ...],
        start: float,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.path = path
        self.start = start
        self.end: float | None = None
        self.events: list[SpanEvent] | None = None

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def add_event(self, name: str, ts: float, **attrs: Any) -> SpanEvent:
        event = SpanEvent(name, ts, attrs)
        if self.events is None:
            self.events = []
        self.events.append(event)
        return event


class _SpanHandle:
    """Context manager for standalone ``tracer.span(name)`` use."""

    __slots__ = ("_tracer", "_name")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> Span:
        return self._tracer.begin(self._name, time.perf_counter())

    def __exit__(self, *exc_info) -> None:
        self._tracer.end(time.perf_counter())


class _NullSpanHandle:
    """Do-nothing context manager returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpanHandle()


class Tracer:
    """Records a tree of timed spans with deterministic ids.

    Use standalone::

        tracer = Tracer()
        with tracer.span("query"):
            with tracer.span("index scan"):
                ...

    or attached to a profiler (``Profiler(tracer=tracer)``), where
    every profiler section opens a span with the same name.
    """

    def __init__(self, enabled: bool = True, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.enabled = enabled
        self.max_spans = max_spans
        #: Completed and open spans, in open order.
        self.spans: list[Span] = []
        #: Spans discarded after :attr:`max_spans` was reached.
        self.dropped_spans = 0
        self._stack: list[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def begin(self, name: str, ts: float) -> Span:
        """Open a span at timestamp ``ts`` (a ``perf_counter`` value)."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            self._next_id,
            parent.span_id if parent is not None else 0,
            name,
            (parent.path + (name,)) if parent is not None else (name,),
            ts,
        )
        self._next_id += 1
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped_spans += 1
        self._stack.append(span)
        return span

    def end(self, ts: float) -> Span:
        """Close the innermost open span at timestamp ``ts``."""
        if not self._stack:
            raise RuntimeError("no open span to end")
        span = self._stack.pop()
        span.end = ts
        return span

    def span(self, name: str) -> "_SpanHandle | _NullSpanHandle":
        """Scoped span: ``with tracer.span("region"): ...``."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanHandle(self, name)

    def event(self, name: str, **attrs: Any) -> None:
        """Attach a point-in-time event to the current open span.

        Silently a no-op when disabled or no span is open, so call
        sites need no guards.
        """
        if not self.enabled or not self._stack:
            return
        self._stack[-1].add_event(name, time.perf_counter(), **attrs)

    def reset(self) -> None:
        """Drop all recorded spans (open spans must be closed first)."""
        if self._stack:
            raise RuntimeError(
                f"cannot reset with open spans: {[s.name for s in self._stack]}"
            )
        self.spans.clear()
        self.dropped_spans = 0
        self._next_id = 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def root_spans(self) -> list[Span]:
        """Spans with no parent, in open order."""
        return [s for s in self.spans if s.parent_id == 0]

    def total_seconds(self) -> float:
        """Sum of root span durations (the traced wall time)."""
        return sum(s.duration for s in self.root_spans())

    def iter_closed(self) -> Iterator[Span]:
        for span in self.spans:
            if span.end is not None:
                yield span

    def aggregate(self) -> tuple[dict[tuple[str, ...], float], dict[tuple[str, ...], int]]:
        """Exclusive seconds and entry counts per section path.

        The same shape :class:`~repro.common.profiling.Profiler` keeps
        internally: a span's exclusive time is its duration minus its
        children's durations, keyed by the full name path — so
        breakdowns computed from spans match the profiler's exactly
        (modulo spans dropped past :attr:`max_spans`).
        """
        inclusive: dict[tuple[str, ...], float] = {}
        calls: dict[tuple[str, ...], int] = {}
        child_time: dict[int, float] = {}
        for span in self.iter_closed():
            if span.parent_id:
                child_time[span.parent_id] = child_time.get(span.parent_id, 0.0) + span.duration
        exclusive: dict[tuple[str, ...], float] = {}
        for span in self.iter_closed():
            own = span.duration - child_time.get(span.span_id, 0.0)
            exclusive[span.path] = exclusive.get(span.path, 0.0) + own
            inclusive[span.path] = inclusive.get(span.path, 0.0) + span.duration
            calls[span.path] = calls.get(span.path, 0) + 1
        return exclusive, calls

    def to_profiler(self):
        """Materialise the spans as a Profiler (for breakdown tables)."""
        from repro.common.profiling import Profiler

        prof = Profiler()
        exclusive, calls = self.aggregate()
        for path, seconds in exclusive.items():
            prof._exclusive[path] += seconds
        for path, count in calls.items():
            prof._calls[path] += count
        return prof

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> str:
        """Chrome ``trace_event`` JSON of the real span timeline.

        Unlike the profiler's synthetic export, timestamps here are the
        recorded ones (relative to the first span's start), so gaps,
        ordering and repeated entries appear exactly as they ran.
        Span events export as instant (``ph: "i"``) events.
        """
        t0 = self.spans[0].start if self.spans else 0.0
        events: list[dict] = []
        for span in self.spans:
            end = span.end if span.end is not None else span.start
            events.append(
                {
                    "name": span.name,
                    "cat": "trace",
                    "ph": "X",
                    "ts": round((span.start - t0) * 1e6, 3),
                    "dur": round((end - span.start) * 1e6, 3),
                    "pid": 1,
                    "tid": 1,
                    "args": {"span_id": span.span_id, "parent_id": span.parent_id},
                }
            )
            for ev in span.events or ():
                events.append(
                    {
                        "name": ev.name,
                        "cat": "trace",
                        "ph": "i",
                        "s": "t",
                        "ts": round((ev.ts - t0) * 1e6, 3),
                        "pid": 1,
                        "tid": 1,
                        "args": dict(ev.attrs),
                    }
                )
        doc = {"traceEvents": events, "displayTimeUnit": "ms"}
        if self.dropped_spans:
            doc["metadata"] = {"dropped_spans": self.dropped_spans}
        return json.dumps(doc, indent=1)

    def to_collapsed(self) -> str:
        """Collapsed-stack export (``flamegraph.pl`` input format).

        Weights are span-derived exclusive microseconds per path; paths
        whose time rounds to zero keep weight 1 so they stay visible.
        """
        exclusive, calls = self.aggregate()
        lines = []
        for path in sorted(exclusive):
            micros = round(exclusive[path] * 1e6)
            if micros <= 0:
                if calls.get(path, 0) <= 0:
                    continue
                micros = 1
            lines.append(";".join(path) + f" {micros}")
        return "\n".join(lines) + ("\n" if lines else "")


class _FrozenTracer(Tracer):
    """Permanently disabled tracer (the type of :data:`NULL_TRACER`).

    Mirrors ``NULL_PROFILER``: the shared instance must never be
    enabled or it would silently collect spans from every caller that
    opted out of tracing.
    """

    def __setattr__(self, name: str, value) -> None:
        if name == "enabled" and value:
            raise TypeError(
                "NULL_TRACER is shared and permanently disabled; "
                "create your own Tracer() instead of enabling it"
            )
        super().__setattr__(name, value)


#: Shared do-nothing tracer for callers that do not want tracing.
NULL_TRACER = _FrozenTracer(enabled=False)
