"""Two k-means implementations: the paper's RC#5.

The paper observes that PASE and Faiss "use a slightly different
implementation of K-means to train the centroids" (Sec. V-A2) and that
the resulting different centroids/clusters change IVF search cost
enough to matter (Sec. VII-A, Fig. 15).  We therefore provide two
deliberately distinct Lloyd's-algorithm variants:

* :func:`faiss_kmeans` — SGEMM-batched assignment, random-sample
  initialization, empty clusters repaired by *splitting the largest
  cluster* (Faiss's policy).
* :func:`pase_kmeans` — row-at-a-time assignment, deterministic
  stride-sampled initialization, empty clusters repaired by *reseeding
  from the farthest point*; one extra refinement convention (centroid
  update uses the running mean only of points that moved buckets last,
  approximated here by a different convergence threshold).

Both converge to valid clusterings of similar quality, but not to the
same centroids — which is exactly what the Fig. 15 "centroid
transplant" experiment needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.distance import l2_sqr_batch, squared_norms
from repro.common.rng import make_rng

#: Row-chunk size for batched assignment, bounding the temporary
#: distance matrix to roughly chunk * n_clusters float32 entries.
_ASSIGN_CHUNK = 4096


@dataclass(slots=True)
class KMeansResult:
    """Output of a k-means run."""

    centroids: np.ndarray  # (n_clusters, d) float32
    assignments: np.ndarray  # (n_train,) int64 — cluster of each training row
    iterations: int
    inertia: float  # sum of squared distances to assigned centroids

    @property
    def n_clusters(self) -> int:
        """Number of centroids trained."""
        return int(self.centroids.shape[0])


def _validate_inputs(data: np.ndarray, n_clusters: int) -> np.ndarray:
    arr = np.ascontiguousarray(data, dtype=np.float32)
    if arr.ndim != 2:
        raise ValueError(f"training data must be 2-D, got ndim={arr.ndim}")
    if n_clusters <= 0:
        raise ValueError(f"n_clusters must be positive, got {n_clusters}")
    if arr.shape[0] < n_clusters:
        raise ValueError(
            f"need at least n_clusters={n_clusters} training rows, got {arr.shape[0]}"
        )
    return arr


def assign_nearest_batch(
    vectors: np.ndarray,
    centroids: np.ndarray,
    centroid_sq_norms: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid assignment via the SGEMM path (RC#1 enabled).

    Returns ``(assignments, distances)`` where ``distances[i]`` is the
    squared distance of row ``i`` to its assigned centroid.  Processes
    rows in chunks to bound the temporary distance matrix.
    """
    if centroid_sq_norms is None:
        centroid_sq_norms = squared_norms(centroids)
    n = vectors.shape[0]
    assignments = np.empty(n, dtype=np.int64)
    best = np.empty(n, dtype=np.float32)
    for start in range(0, n, _ASSIGN_CHUNK):
        stop = min(start + _ASSIGN_CHUNK, n)
        dists = l2_sqr_batch(vectors[start:stop], centroids, centroid_sq_norms)
        idx = np.argmin(dists, axis=1)
        assignments[start:stop] = idx
        best[start:stop] = dists[np.arange(stop - start), idx]
    return assignments, best


def assign_nearest_loop(
    vectors: np.ndarray, centroids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid assignment one vector at a time (no SGEMM).

    This is the straightforward solution the paper attributes to PASE:
    "compute the distance between x_i and all the centroids to find the
    closest centroid" (Sec. V-A2), with ``fvec_L2sqr``-style per-row
    work instead of one matrix multiplication.  Faiss with SGEMM
    disabled (Figs. 4, 6) takes the same path.
    """
    n = vectors.shape[0]
    assignments = np.empty(n, dtype=np.int64)
    best = np.empty(n, dtype=np.float32)
    for i in range(n):
        diff = centroids - vectors[i]
        dists = np.einsum("ij,ij->i", diff, diff)
        j = int(np.argmin(dists))
        assignments[i] = j
        best[i] = dists[j]
    return assignments, best


def faiss_kmeans(
    data: np.ndarray,
    n_clusters: int,
    max_iterations: int = 10,
    seed: int | None = None,
    use_sgemm: bool = True,
) -> KMeansResult:
    """Faiss-style k-means: random-sample init, split-largest repair.

    Args:
        data: ``(n, d)`` training matrix (already subsampled by caller).
        n_clusters: number of centroids to train.
        max_iterations: Lloyd iterations (Faiss defaults to a small
            fixed count rather than convergence detection).
        seed: RNG seed for initialization.
        use_sgemm: when False, assignment uses the per-row loop —
            the Fig. 4/6 ablation also slows training.
    """
    arr = _validate_inputs(data, n_clusters)
    rng = make_rng(seed)
    init_idx = rng.choice(arr.shape[0], size=n_clusters, replace=False)
    centroids = arr[np.sort(init_idx)].copy()

    assign = assign_nearest_batch if use_sgemm else assign_nearest_loop
    assignments = np.zeros(arr.shape[0], dtype=np.int64)
    best = np.zeros(arr.shape[0], dtype=np.float32)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        assignments, best = assign(arr, centroids)
        counts = np.bincount(assignments, minlength=n_clusters)
        sums = np.zeros_like(centroids, dtype=np.float64)
        np.add.at(sums, assignments, arr)
        nonempty = counts > 0
        centroids[nonempty] = (sums[nonempty] / counts[nonempty, None]).astype(np.float32)
        # Faiss repairs empty clusters by splitting the largest one:
        # copy its centroid and nudge it by a tiny epsilon.
        for empty in np.flatnonzero(~nonempty):
            largest = int(np.argmax(counts))
            centroids[empty] = centroids[largest] * (1.0 + 1e-4)
            centroids[largest] = centroids[largest] * (1.0 - 1e-4)
            counts[empty] = counts[largest] // 2
            counts[largest] -= counts[empty]
    assignments, best = assign(arr, centroids)
    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        iterations=iterations,
        inertia=float(best.sum()),
    )


def pase_kmeans(
    data: np.ndarray,
    n_clusters: int,
    max_iterations: int = 10,
    tolerance: float = 1e-4,
    seed: int | None = None,
) -> KMeansResult:
    """PASE-style k-means: stride init, farthest-point repair, loop assignment.

    Differences from :func:`faiss_kmeans` (each one small, together
    producing different centroids — RC#5):

    - initialization picks every ``n // n_clusters``-th training row
      (deterministic stride) instead of a random sample;
    - assignment runs row-at-a-time (no SGEMM);
    - empty clusters are reseeded from the point currently farthest
      from its centroid;
    - iteration stops early when centroids move less than
      ``tolerance`` (relative Frobenius shift).
    """
    arr = _validate_inputs(data, n_clusters)
    del seed  # deterministic by design; kept for signature symmetry
    stride = max(arr.shape[0] // n_clusters, 1)
    centroids = arr[::stride][:n_clusters].copy()
    if centroids.shape[0] < n_clusters:  # tiny inputs: pad from the head
        pad = arr[: n_clusters - centroids.shape[0]]
        centroids = np.vstack([centroids, pad])

    assignments = np.zeros(arr.shape[0], dtype=np.int64)
    best = np.zeros(arr.shape[0], dtype=np.float32)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        assignments, best = assign_nearest_loop(arr, centroids)
        counts = np.bincount(assignments, minlength=n_clusters)
        sums = np.zeros_like(centroids, dtype=np.float64)
        np.add.at(sums, assignments, arr)
        new_centroids = centroids.copy()
        nonempty = counts > 0
        new_centroids[nonempty] = (sums[nonempty] / counts[nonempty, None]).astype(np.float32)
        for empty in np.flatnonzero(~nonempty):
            farthest = int(np.argmax(best))
            new_centroids[empty] = arr[farthest]
            best[farthest] = 0.0
        shift = float(np.linalg.norm(new_centroids - centroids))
        scale = float(np.linalg.norm(centroids)) or 1.0
        centroids = new_centroids
        if shift / scale < tolerance:
            break
    assignments, best = assign_nearest_loop(arr, centroids)
    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        iterations=iterations,
        inertia=float(best.sum()),
    )


def sample_training_rows(
    data: np.ndarray, sample_ratio: float, n_clusters: int, seed: int | None = None
) -> np.ndarray:
    """Subsample training rows per the paper's ``sr`` parameter.

    Guarantees at least ``n_clusters`` rows survive (k-means needs one
    row per centroid) while honouring the requested ratio otherwise.
    """
    if not 0.0 < sample_ratio <= 1.0:
        raise ValueError(f"sample_ratio must be in (0, 1], got {sample_ratio}")
    arr = np.ascontiguousarray(data, dtype=np.float32)
    n = arr.shape[0]
    target = max(int(round(n * sample_ratio)), min(n_clusters, n))
    if target >= n:
        return arr
    rng = make_rng(seed)
    idx = rng.choice(n, size=target, replace=False)
    return arr[np.sort(idx)]
