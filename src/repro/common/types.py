"""Core value types shared across the library.

These dataclasses are the vocabulary of the whole reproduction: every
index (specialized or generalized) reports construction statistics as a
:class:`BuildStats`, sizes as an :class:`IndexSizeInfo`, and query
answers as a :class:`SearchResult`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class DistanceType(enum.IntEnum):
    """Similarity function identifiers.

    The integer values follow PASE's SQL convention where the index
    option ``distance_type = 0`` selects Euclidean distance (see the
    ``CREATE INDEX`` example in Sec. II-E of the paper).
    """

    L2 = 0
    INNER_PRODUCT = 1
    COSINE = 2


@dataclass(frozen=True, slots=True)
class Neighbor:
    """A single answer of a vector similarity search."""

    vector_id: int
    distance: float

    def __lt__(self, other: "Neighbor") -> bool:
        return (self.distance, self.vector_id) < (other.distance, other.vector_id)


@dataclass(slots=True)
class SearchResult:
    """Result of one top-k query.

    Attributes:
        neighbors: the k nearest neighbors, sorted ascending by distance.
        elapsed_seconds: wall-clock time of the search call.
        distance_computations: number of full-vector (or ADC) distance
            evaluations performed — the paper's primary work metric.
        tuples_accessed: number of tuple fetches that went through the
            buffer manager (always 0 for the specialized engine, which
            dereferences memory directly; see RC#2).
    """

    neighbors: list[Neighbor]
    elapsed_seconds: float = 0.0
    distance_computations: int = 0
    tuples_accessed: int = 0

    @property
    def ids(self) -> list[int]:
        """Vector ids of the neighbors, nearest first."""
        return [n.vector_id for n in self.neighbors]

    @property
    def distances(self) -> list[float]:
        """Distances of the neighbors, ascending."""
        return [n.distance for n in self.neighbors]


@dataclass(slots=True)
class BuildStats:
    """Timing of an index construction run.

    The paper splits quantization-index construction into a *training*
    phase (k-means over a sample) and an *adding* phase (assigning every
    base vector to a bucket); graph indexes only have an adding phase.
    """

    train_seconds: float = 0.0
    add_seconds: float = 0.0
    vectors_added: int = 0
    distance_computations: int = 0

    @property
    def total_seconds(self) -> float:
        """End-to-end construction time."""
        return self.train_seconds + self.add_seconds


@dataclass(slots=True)
class IndexSizeInfo:
    """Byte-level size accounting of a built index.

    ``used_bytes`` counts bytes that hold live index payload;
    ``allocated_bytes`` counts what the storage layer actually reserved
    (for the page-structured PASE indexes this includes per-page waste,
    which is the essence of RC#4).
    """

    allocated_bytes: int
    used_bytes: int
    page_count: int = 0
    detail: dict[str, int] = field(default_factory=dict)

    @property
    def waste_ratio(self) -> float:
        """Fraction of allocated space not holding live payload."""
        if self.allocated_bytes == 0:
            return 0.0
        return 1.0 - self.used_bytes / self.allocated_bytes

    @property
    def allocated_mib(self) -> float:
        """Allocated size in MiB, the unit the paper's figures use."""
        return self.allocated_bytes / (1024 * 1024)


def as_float32_matrix(data: np.ndarray) -> np.ndarray:
    """Validate and coerce ``data`` to a C-contiguous float32 matrix.

    Every public entry point of both engines funnels vector data through
    this helper so kernels can assume a uniform layout (the same role
    ``float*`` plays in Faiss).

    Raises:
        ValueError: if ``data`` is not two-dimensional or is empty.
    """
    arr = np.ascontiguousarray(data, dtype=np.float32)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D array of vectors, got ndim={arr.ndim}")
    if arr.size == 0:
        raise ValueError("expected a non-empty array of vectors")
    return arr


def as_float32_vector(vec: np.ndarray) -> np.ndarray:
    """Validate and coerce ``vec`` to a contiguous 1-D float32 vector."""
    arr = np.ascontiguousarray(vec, dtype=np.float32)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    if arr.size == 0:
        raise ValueError("expected a non-empty vector")
    return arr
