"""Observability primitives shared by every layer of the stack.

The paper's root-cause methodology is counter- and profile-driven:
per-query page accesses expose RC#2, distance-computation counts
expose nprobe/efs amplification, and flamegraphs (Fig. 8) attribute
wall time to code regions.  This module holds the building blocks the
rest of the reproduction composes into pg_stat-style views and bench
reports:

* :class:`CounterDeltaMixin` — ``snapshot()``/``delta()`` for counter
  dataclasses, so per-query accounting reads two snapshots instead of
  mutating shared counters (which double-counts across nested scans);
* :class:`LatencyHistogram` — log-bucketed latency recording with
  p50/p95/p99, the shape ``pg_stat_statements`` summarises queries in;
* :class:`IndexScanStats` — cumulative per-index scan/candidate
  counters, shared by pgsim index AMs and the specialized engines;
* :func:`write_bench_json` — the unified ``BENCH_*.json`` emitter all
  benchmark scripts report through.

This module must stay importable without :mod:`repro.pgsim` (pgsim's
own modules import it).
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence


class CounterDeltaMixin:
    """snapshot/delta arithmetic for flat counter dataclasses.

    Mix into a ``@dataclass`` whose fields are all numeric counters.
    ``snapshot()`` copies the current values; ``delta(since)`` returns
    a new instance holding field-wise differences.  Readers never
    reset or mutate the live counters, so concurrent consumers (an
    EXPLAIN node, the per-query tracker and a pg_stat view) cannot
    double-count each other's windows.
    """

    def snapshot(self):
        """An independent copy of the current counter values."""
        return dataclasses.replace(self)  # type: ignore[type-var]

    def delta(self, since):
        """Field-wise ``self - since`` as a new instance."""
        if type(since) is not type(self):
            raise TypeError(
                f"cannot delta {type(self).__name__} against {type(since).__name__}"
            )
        diffs = {
            f.name: getattr(self, f.name) - getattr(since, f.name)
            for f in dataclasses.fields(self)  # type: ignore[arg-type]
        }
        return type(self)(**diffs)

    def as_dict(self) -> dict[str, Any]:
        """Plain ``{field: value}`` mapping (for JSON emission)."""
        return {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)  # type: ignore[arg-type]
        }


# ----------------------------------------------------------------------
# wait events
# ----------------------------------------------------------------------

#: Canonical wait-event names (PostgreSQL's ``pg_stat_activity``
#: vocabulary).  pgsim records blocked time under these when a
#: statement waits on storage or the buffer clock instead of running
#: engine code; classification is exclusive — the events never overlap
#: — so summing them never double-counts.
EV_BUFFER_READ = "BufferRead"  #: buffer-miss handling minus read/evict
EV_DATA_FILE_READ = "DataFileRead"  #: block read from the disk manager
EV_WAL_WRITE = "WALWrite"  #: WAL file append
EV_WAL_SYNC = "WALSync"  #: WAL fsync
EV_LWLOCK_BUFFER_CLOCK = "LWLockBufferClock"  #: clock-sweep eviction
EV_STATEMENT_LOCK = "SessionStatementLock"  #: waiting on the statement lock

#: event name -> PostgreSQL-style wait-event class.
WAIT_EVENT_TYPES = {
    EV_BUFFER_READ: "IO",
    EV_DATA_FILE_READ: "IO",
    EV_WAL_WRITE: "IO",
    EV_WAL_SYNC: "IO",
    EV_LWLOCK_BUFFER_CLOCK: "LWLock",
    EV_STATEMENT_LOCK: "Lock",
}


class WaitEventStats:
    """Cumulative per-event wait accounting (count + blocked seconds).

    Dict-keyed rather than a counter dataclass so new event names need
    no schema change; supports the same snapshot/delta protocol as
    :class:`CounterDeltaMixin` plus an explicit :meth:`reset` (the
    ``pg_stat_reset()`` contract).
    """

    __slots__ = ("counts", "seconds")

    def __init__(
        self,
        counts: dict[str, int] | None = None,
        seconds: dict[str, float] | None = None,
    ) -> None:
        self.counts: dict[str, int] = dict(counts or {})
        self.seconds: dict[str, float] = dict(seconds or {})

    def record(self, event: str, elapsed: float) -> None:
        """Add one occurrence of ``event`` that blocked for ``elapsed`` s."""
        self.counts[event] = self.counts.get(event, 0) + 1
        self.seconds[event] = self.seconds.get(event, 0.0) + elapsed

    def snapshot(self) -> "WaitEventStats":
        return WaitEventStats(self.counts, self.seconds)

    def delta(self, since: "WaitEventStats") -> "WaitEventStats":
        counts = {}
        seconds = {}
        for event, n in self.counts.items():
            diff = n - since.counts.get(event, 0)
            if diff:
                counts[event] = diff
                seconds[event] = self.seconds.get(event, 0.0) - since.seconds.get(event, 0.0)
        return WaitEventStats(counts, seconds)

    def reset(self) -> None:
        self.counts.clear()
        self.seconds.clear()

    def events(self) -> list[str]:
        """Recorded event names, sorted."""
        return sorted(self.counts)

    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def as_dict(self) -> dict[str, Any]:
        return {
            event: {"count": self.counts[event], "seconds": self.seconds.get(event, 0.0)}
            for event in self.events()
        }

    def __bool__(self) -> bool:
        return bool(self.counts)


# ----------------------------------------------------------------------
# index-build progress
# ----------------------------------------------------------------------


class BuildProgress:
    """Live phase/tuple progress of one index build.

    The moral equivalent of a ``pg_stat_progress_create_index`` row:
    the access method reports its current phase (sample/kmeans/assign/
    flush for IVF, insert/link for HNSW) and ticks tuples as it
    processes them; observers read the fields at any time.
    """

    __slots__ = ("index_name", "am_name", "phase", "tuples_done", "tuples_total", "phases_seen", "finished")

    def __init__(self, index_name: str = "", am_name: str = "") -> None:
        self.index_name = index_name
        self.am_name = am_name
        self.phase = "initializing"
        self.tuples_done = 0
        self.tuples_total = 0
        #: Phases in the order the AM entered them.
        self.phases_seen: list[str] = []
        self.finished = False

    def set_phase(self, phase: str, tuples_total: int | None = None) -> None:
        """Enter a build phase; optionally (re)declare the tuple goal."""
        self.phase = phase
        self.phases_seen.append(phase)
        if tuples_total is not None:
            self.tuples_total = tuples_total
            self.tuples_done = 0

    def tick(self, n: int = 1) -> None:
        """Advance the current phase's tuple counter."""
        self.tuples_done += n


class _NullProgress(BuildProgress):
    """Do-nothing progress sink (default on every index AM)."""

    def set_phase(self, phase: str, tuples_total: int | None = None) -> None:
        return None

    def tick(self, n: int = 1) -> None:
        return None


#: Shared no-op progress reporter for builds nobody is watching.
NULL_PROGRESS = _NullProgress()


class VacuumProgress:
    """Live phase progress of one VACUUM (``pg_stat_progress_vacuum``).

    The executor drives the heap-scan / index-vacuum / cleanup phases;
    each index AM ticks :meth:`tick_index_entries` from inside its
    ``ambulkdelete`` so observers watch per-index reclamation advance
    in real time, the way PostgreSQL reports ``vacuuming indexes``.
    """

    __slots__ = (
        "table_name",
        "phase",
        "heap_blks_total",
        "heap_blks_scanned",
        "tuples_removed",
        "index_name",
        "index_vacuum_count",
        "index_entries_removed",
        "phases_seen",
        "finished",
    )

    def __init__(self, table_name: str = "") -> None:
        self.table_name = table_name
        self.phase = "initializing"
        self.heap_blks_total = 0
        self.heap_blks_scanned = 0
        self.tuples_removed = 0
        #: Index currently under ``ambulkdelete`` (empty between).
        self.index_name = ""
        self.index_vacuum_count = 0
        self.index_entries_removed = 0
        #: Phases in the order the executor entered them.
        self.phases_seen: list[str] = []
        self.finished = False

    def set_phase(self, phase: str) -> None:
        self.phase = phase
        self.phases_seen.append(phase)

    def tick_heap(self, n: int = 1) -> None:
        self.heap_blks_scanned += n

    def tick_index_entries(self, n: int = 1) -> None:
        self.index_entries_removed += n


class _NullVacuumProgress(VacuumProgress):
    """Do-nothing vacuum progress sink (default on every index AM)."""

    def set_phase(self, phase: str) -> None:
        return None

    def tick_heap(self, n: int = 1) -> None:
        return None

    def tick_index_entries(self, n: int = 1) -> None:
        return None


#: Shared no-op vacuum-progress reporter.
NULL_VACUUM_PROGRESS = _NullVacuumProgress()


@dataclass(slots=True)
class IndexScanStats(CounterDeltaMixin):
    """Cumulative index-AM work counters (``pg_stat_indexes``).

    ``candidates`` counts tuples the AM actually evaluated a distance
    for — the paper's nprobe/efs amplification factor — not the k
    results returned.
    """

    scans: int = 0
    candidates: int = 0


class LatencyHistogram:
    """Log-bucketed latency histogram with percentile estimation.

    Buckets are geometrically spaced (``_PER_DECADE`` per factor of
    ten, ~12% relative width) from 100 ns up; recording is O(1) and
    the memory footprint is a small dict, so per-statement histograms
    are cheap enough for ``pg_stat_statements`` to keep one each.
    Percentiles are bucket upper-bound estimates, conservative the way
    monitoring histograms usually are.
    """

    _PER_DECADE = 20
    _MIN_SECONDS = 1e-7

    __slots__ = ("_buckets", "count", "total_seconds", "max_seconds")

    def __init__(self) -> None:
        self._buckets: dict[int, int] = {}
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        """Add one sample (negative values clamp to zero)."""
        seconds = max(seconds, 0.0)
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        index = self._index(seconds)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @classmethod
    def _index(cls, seconds: float) -> int:
        if seconds <= cls._MIN_SECONDS:
            return 0
        return 1 + int(math.log10(seconds / cls._MIN_SECONDS) * cls._PER_DECADE)

    @classmethod
    def _upper_bound(cls, index: int) -> float:
        if index == 0:
            return cls._MIN_SECONDS
        return cls._MIN_SECONDS * 10 ** (index / cls._PER_DECADE)

    def percentile(self, q: float) -> float:
        """Latency (seconds) at quantile ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                return min(self._upper_bound(index), self.max_seconds)
        return self.max_seconds

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    @property
    def mean(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def merge(self, other: "LatencyHistogram") -> None:
        """Accumulate another histogram's samples into this one."""
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n
        self.count += other.count
        self.total_seconds += other.total_seconds
        self.max_seconds = max(self.max_seconds, other.max_seconds)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound_seconds, cumulative_count)`` pairs, ascending.

        The Prometheus histogram shape: each entry counts every sample
        at or below its bound, so counts are non-decreasing and the
        last entry equals ``count`` (the exporter adds the ``+Inf``
        bucket itself).  Only occupied buckets are materialized — the
        log-bucket grid is sparse by construction.
        """
        out: list[tuple[float, int]] = []
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            out.append((self._upper_bound(index), seen))
        return out


class RecallHistogram:
    """Fixed-bucket recall@k histogram for the online quality probes.

    Recall lives in [0, 1], so linear buckets 0.05 wide beat the
    latency histogram's log spacing: the interesting signal is mass
    shifting from the 1.0 bucket toward 0.9 and below as an index
    degrades under churn.  Tracks count/sum/min and the most recent
    observation so a view can show both the trend and "right now".
    """

    N_BUCKETS = 20

    __slots__ = ("_buckets", "count", "total", "min_value", "last_value")

    def __init__(self) -> None:
        #: bucket index -> count; bucket i covers (i/20, (i+1)/20].
        self._buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min_value = 1.0
        self.last_value = 0.0

    def record(self, recall: float) -> None:
        recall = min(max(recall, 0.0), 1.0)
        self.count += 1
        self.total += recall
        self.min_value = min(self.min_value, recall)
        self.last_value = recall
        index = min(int(recall * self.N_BUCKETS), self.N_BUCKETS - 1)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` over the full [0, 1] grid."""
        out: list[tuple[float, int]] = []
        seen = 0
        for index in range(self.N_BUCKETS):
            seen += self._buckets.get(index, 0)
            out.append(((index + 1) / self.N_BUCKETS, seen))
        return out


# ----------------------------------------------------------------------
# unified benchmark JSON emitter
# ----------------------------------------------------------------------

#: Schema identifier stamped into every emitted file.
BENCH_SCHEMA = "repro-bench/v1"

#: Environment variable overriding the output directory.
BENCH_DIR_ENV = "BENCH_RESULTS_DIR"


def latency_summary(latencies_seconds: Sequence[float]) -> dict[str, Any]:
    """Percentile summary of raw latency samples (milliseconds)."""
    if not latencies_seconds:
        return {"count": 0}
    ordered = sorted(latencies_seconds)

    def at(q: float) -> float:
        return ordered[min(int(q * len(ordered)), len(ordered) - 1)]

    return {
        "count": len(ordered),
        "mean_ms": sum(ordered) / len(ordered) * 1e3,
        "p50_ms": at(0.50) * 1e3,
        "p95_ms": at(0.95) * 1e3,
        "p99_ms": at(0.99) * 1e3,
        "min_ms": ordered[0] * 1e3,
        "max_ms": ordered[-1] * 1e3,
    }


def write_bench_json(
    workload: str,
    *,
    params: Mapping[str, Any] | None = None,
    latencies_seconds: Sequence[float] | None = None,
    latency: Mapping[str, Any] | None = None,
    counters: Mapping[str, Any] | None = None,
    extra: Mapping[str, Any] | None = None,
    out_dir: str | Path | None = None,
) -> Path:
    """Emit one ``BENCH_<workload>.json`` through the unified schema.

    Every benchmark script reports through this one function so the
    perf trajectory is machine-comparable across PRs: fixed top-level
    keys (``schema``/``workload``/``params``/``latency``/``counters``),
    latency always in milliseconds, counters always raw deltas.

    Args:
        workload: short identifier; becomes the filename suffix.
        params: workload configuration (scale, k, nprobe, ...).
        latencies_seconds: raw per-query samples to summarise; mutually
            additive with ``latency`` (explicit summary wins per key).
        latency: pre-computed summary (e.g. from a LatencyHistogram).
        counters: counter deltas attributed to the run.
        extra: anything workload-specific.
        out_dir: target directory; defaults to ``$BENCH_RESULTS_DIR``
            or the current directory.

    Returns the path written.
    """
    summary: dict[str, Any] = {}
    if latencies_seconds is not None:
        summary.update(latency_summary(latencies_seconds))
    if latency is not None:
        summary.update(latency)
    doc: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "workload": workload,
        "params": dict(params or {}),
        "latency": summary,
        "counters": {k: _plain(v) for k, v in (counters or {}).items()},
    }
    if extra:
        doc["extra"] = {k: _plain(v) for k, v in extra.items()}
    directory = Path(out_dir if out_dir is not None else os.environ.get(BENCH_DIR_ENV, "."))
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{workload}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def _plain(value: Any) -> Any:
    """Coerce counter dataclasses / numpy scalars to JSON-safe values."""
    if isinstance(value, CounterDeltaMixin):
        return value.as_dict()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except Exception:
            return value
    return value
