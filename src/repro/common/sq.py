"""Scalar quantization (SQ8) codec.

IVF_SQ8 is the third quantization index the paper's background names
(Sec. II-B, after IVF_FLAT and IVF_PQ): each dimension is linearly
quantized to one byte using per-dimension [min, max] ranges learned
from a training sample.  Reconstruction error is bounded by half a
quantization step per dimension, making SQ8 far more accurate than PQ
at 4x the code size (one byte per dimension vs ``m`` bytes total).

Both engines share this codec; they differ only in how codes are
stored and scanned (arrays vs pages), exactly like the other indexes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Quantization levels for one byte.
LEVELS = 255


@dataclass(slots=True)
class SQ8Codec:
    """Per-dimension linear quantizer to uint8.

    Attributes:
        vmin: ``(d,)`` float32 lower bounds.
        vdiff: ``(d,)`` float32 ranges (``max - min``); zero ranges are
            clamped to 1 so constant dimensions decode exactly.
    """

    vmin: np.ndarray
    vdiff: np.ndarray

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return int(self.vmin.shape[0])

    def nbytes(self) -> int:
        """Size of the codec parameters."""
        return int(self.vmin.nbytes + self.vdiff.nbytes)


def train_codec(training_data: np.ndarray) -> SQ8Codec:
    """Learn per-dimension ranges from a sample."""
    arr = np.ascontiguousarray(training_data, dtype=np.float32)
    if arr.ndim != 2 or arr.shape[0] < 1:
        raise ValueError("training data must be a non-empty (n, d) matrix")
    vmin = arr.min(axis=0)
    vdiff = arr.max(axis=0) - vmin
    vdiff[vdiff == 0.0] = 1.0
    return SQ8Codec(vmin=vmin.astype(np.float32), vdiff=vdiff.astype(np.float32))


def encode(codec: SQ8Codec, vectors: np.ndarray) -> np.ndarray:
    """Quantize ``(n, d)`` vectors to ``(n, d)`` uint8 codes.

    Out-of-range values (queries or later inserts beyond the training
    sample's range) clamp to the byte range, as in Faiss.
    """
    arr = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
    if arr.shape[1] != codec.dim:
        raise ValueError(f"vectors have dim {arr.shape[1]}, codec has {codec.dim}")
    scaled = (arr - codec.vmin) / codec.vdiff * LEVELS
    return np.clip(np.rint(scaled), 0, LEVELS).astype(np.uint8)


def decode(codec: SQ8Codec, codes: np.ndarray) -> np.ndarray:
    """Dequantize codes back to approximate float32 vectors."""
    arr = np.atleast_2d(np.asarray(codes, dtype=np.uint8))
    if arr.shape[1] != codec.dim:
        raise ValueError(f"codes have dim {arr.shape[1]}, codec has {codec.dim}")
    return (arr.astype(np.float32) / LEVELS) * codec.vdiff + codec.vmin


def reconstruction_error_bound(codec: SQ8Codec) -> float:
    """Worst-case squared L2 reconstruction error for in-range vectors.

    Each dimension errs by at most half a step; the bound is the sum of
    squared half-steps.
    """
    half_steps = codec.vdiff / LEVELS / 2.0
    return float(np.sum(half_steps.astype(np.float64) ** 2))
