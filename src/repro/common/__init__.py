"""Shared kernels and utilities used by both database engines.

This subpackage contains everything that is common to the specialized
(Faiss-like) engine in :mod:`repro.specialized` and the generalized
(PASE-on-PostgreSQL-like) engine in :mod:`repro.pase`:

- distance kernels (scalar pair-wise and SGEMM-style batched),
- two k-means implementations (the paper's RC#5),
- top-k heaps of size *k* and size *n* (the paper's RC#6),
- product-quantization codecs with naive and optimized precomputed
  tables (the paper's RC#7),
- synthetic dataset generators standing in for SIFT/GIST/Deep/Turing,
- evaluation metrics (recall@k, latency statistics),
- a ``perf``-like category profiler used to regenerate the paper's
  time-breakdown tables, and
- a deterministic parallel-execution simulator used for the paper's
  multi-threading experiments (the paper's RC#3).
"""

from repro.common.types import (
    BuildStats,
    DistanceType,
    IndexSizeInfo,
    Neighbor,
    SearchResult,
)

__all__ = [
    "BuildStats",
    "DistanceType",
    "IndexSizeInfo",
    "Neighbor",
    "SearchResult",
]
