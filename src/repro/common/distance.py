"""Distance kernels: the heart of the paper's RC#1.

Two computation paths are provided for every metric:

* **SGEMM path** (:func:`l2_sqr_batch`): expresses all-pairs squared
  Euclidean distance as ``||x||^2 + ||c||^2 - 2 x.c`` and computes the
  cross term with one matrix-matrix multiplication, exactly the trick
  the paper credits Faiss's use of BLAS SGEMM for (Sec. V-A2).  NumPy's
  ``@`` on float32 operands dispatches to the platform BLAS ``sgemm``.

* **per-pair path** (:func:`l2_sqr` / :func:`l2_sqr_pairwise_loop`):
  computes one distance per call, the way PASE's ``fvec_L2sqr_ref``
  does.  The generalized engine uses only this path; the specialized
  engine falls back to it when ``use_sgemm=False`` to reproduce the
  paper's ablation (Figs. 4, 6, 9).

All kernels operate on float32 and return float32/float64 scalars or
float32 matrices.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.common.types import DistanceType


def l2_sqr(a: np.ndarray, b: np.ndarray) -> float:
    """Squared Euclidean distance between two vectors (per-pair path).

    This is the Python analogue of PASE's ``fvec_L2sqr_ref``: one call
    per pair, no batching.
    """
    diff = a - b
    return float(np.dot(diff, diff))


def inner_product(a: np.ndarray, b: np.ndarray) -> float:
    """Inner product between two vectors (per-pair path)."""
    return float(np.dot(a, b))


def cosine_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine distance (1 - cosine similarity) between two vectors."""
    denom = float(np.linalg.norm(a)) * float(np.linalg.norm(b))
    if denom == 0.0:
        return 1.0
    return 1.0 - float(np.dot(a, b)) / denom


def l2_sqr_batch(
    queries: np.ndarray,
    targets: np.ndarray,
    target_sq_norms: np.ndarray | None = None,
) -> np.ndarray:
    """All-pairs squared L2 distances via the SGEMM decomposition.

    Computes the ``(len(queries), len(targets))`` distance matrix as
    ``||q||^2 + ||t||^2 - 2 q @ t.T``, with the cross term produced by a
    single BLAS SGEMM call — the optimization the paper identifies as
    RC#1.

    Args:
        queries: ``(nq, d)`` float32 matrix.
        targets: ``(nt, d)`` float32 matrix.
        target_sq_norms: optional precomputed ``||t||^2`` row; Faiss
            caches these in a table "to avoid redundant computing"
            (Sec. V-A2), and callers that loop over query batches
            should do the same.

    Returns:
        ``(nq, nt)`` float32 matrix of squared distances, clipped at 0
        to absorb floating-point cancellation.
    """
    q = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    t = np.atleast_2d(np.asarray(targets, dtype=np.float32))
    if target_sq_norms is None:
        target_sq_norms = squared_norms(t)
    q_sq = squared_norms(q)
    cross = q @ t.T  # BLAS sgemm
    dists = q_sq[:, None] + target_sq_norms[None, :] - 2.0 * cross
    np.maximum(dists, 0.0, out=dists)
    return dists


def inner_product_batch(queries: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """All-pairs (negated) inner products via SGEMM.

    Negated so that, like L2, *smaller is more similar*; both engines
    rank by ascending distance regardless of metric.
    """
    q = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    t = np.atleast_2d(np.asarray(targets, dtype=np.float32))
    return -(q @ t.T)


def cosine_distance_batch(queries: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """All-pairs cosine distances via SGEMM plus norm scaling."""
    q = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    t = np.atleast_2d(np.asarray(targets, dtype=np.float32))
    q_norms = np.sqrt(squared_norms(q))
    t_norms = np.sqrt(squared_norms(t))
    denom = np.outer(q_norms, t_norms)
    # Zero-norm vectors are maximally distant from everything.
    with np.errstate(divide="ignore", invalid="ignore"):
        sims = np.where(denom > 0.0, (q @ t.T) / denom, 0.0)
    return (1.0 - sims).astype(np.float32)


def l2_sqr_pairwise_loop(queries: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """All-pairs squared L2 distances via one :func:`l2_sqr` per pair.

    The non-SGEMM reference path: identical output to
    :func:`l2_sqr_batch` but computed pair-at-a-time, the way PASE (and
    Faiss with SGEMM disabled) does it.  Deliberately not vectorized —
    its cost relative to :func:`l2_sqr_batch` *is* the RC#1 experiment.
    """
    q = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    t = np.atleast_2d(np.asarray(targets, dtype=np.float32))
    out = np.empty((q.shape[0], t.shape[0]), dtype=np.float32)
    for i in range(q.shape[0]):
        qi = q[i]
        for j in range(t.shape[0]):
            out[i, j] = l2_sqr(qi, t[j])
    return out


def l2_sqr_rows(query: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Squared L2 distance from one query to each target row.

    The one-query batched kernel backing the batch executor path: the
    same ``(t - q)`` difference arithmetic as :func:`l2_sqr` (not the
    SGEMM decomposition, whose cancellation error would let the two
    executor paths disagree), reduced row-wise in one einsum call.
    """
    t = np.atleast_2d(np.asarray(targets, dtype=np.float32))
    diff = t - np.asarray(query, dtype=np.float32)
    return np.einsum("ij,ij->i", diff, diff).astype(np.float64)


def inner_product_rows(query: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Negated inner product from one query to each target row."""
    t = np.atleast_2d(np.asarray(targets, dtype=np.float32))
    return -(t @ np.asarray(query, dtype=np.float32)).astype(np.float64)


def cosine_distance_rows(query: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Cosine distance from one query to each target row.

    Zero-norm operands map to distance 1.0, as in
    :func:`cosine_distance`.
    """
    q = np.asarray(query, dtype=np.float32)
    t = np.atleast_2d(np.asarray(targets, dtype=np.float32))
    dots = (t @ q).astype(np.float64)
    q_norm = float(np.linalg.norm(q))
    t_norms = np.sqrt(np.einsum("ij,ij->i", t, t)).astype(np.float64)
    denom = q_norm * t_norms
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(denom > 0.0, 1.0 - dots / denom, 1.0)


def squared_norms(matrix: np.ndarray) -> np.ndarray:
    """Row-wise squared L2 norms ``||x_i||^2`` as a float32 vector."""
    m = np.atleast_2d(np.asarray(matrix, dtype=np.float32))
    return np.einsum("ij,ij->i", m, m, dtype=np.float32)


PairwiseKernel = Callable[[np.ndarray, np.ndarray], float]
BatchKernel = Callable[[np.ndarray, np.ndarray], np.ndarray]

_PAIRWISE: dict[DistanceType, PairwiseKernel] = {
    DistanceType.L2: l2_sqr,
    DistanceType.INNER_PRODUCT: lambda a, b: -inner_product(a, b),
    DistanceType.COSINE: cosine_distance,
}

_BATCH: dict[DistanceType, BatchKernel] = {
    DistanceType.L2: l2_sqr_batch,
    DistanceType.INNER_PRODUCT: inner_product_batch,
    DistanceType.COSINE: cosine_distance_batch,
}

_ROWS: dict[DistanceType, BatchKernel] = {
    DistanceType.L2: l2_sqr_rows,
    DistanceType.INNER_PRODUCT: inner_product_rows,
    DistanceType.COSINE: cosine_distance_rows,
}


def pairwise_kernel(distance_type: DistanceType) -> PairwiseKernel:
    """Per-pair kernel for ``distance_type`` (smaller = more similar)."""
    try:
        return _PAIRWISE[DistanceType(distance_type)]
    except KeyError:
        raise ValueError(f"unsupported distance type: {distance_type!r}") from None


def batch_kernel(distance_type: DistanceType) -> BatchKernel:
    """SGEMM-backed batch kernel for ``distance_type``."""
    try:
        return _BATCH[DistanceType(distance_type)]
    except KeyError:
        raise ValueError(f"unsupported distance type: {distance_type!r}") from None


def rows_kernel(distance_type: DistanceType) -> BatchKernel:
    """One-query row-wise kernel for ``distance_type`` (float64 out)."""
    try:
        return _ROWS[DistanceType(distance_type)]
    except KeyError:
        raise ValueError(f"unsupported distance type: {distance_type!r}") from None
