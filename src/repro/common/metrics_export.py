"""Prometheus text-exposition exporter over pgsim's counter families.

:class:`MetricsRegistry` snapshots every cumulative counter the engine
keeps — buffer manager, WAL, heap tuple traffic, wait events,
``pg_stat_statements`` (including the latency histogram as cumulative
buckets), per-index scan and recall-probe stats, live backend states
and the slow-query log — into the Prometheus text format, served by
``PgSimDatabase.metrics_text()`` and the ``repro-bench metrics`` CLI.

The registry is duck-typed against the database facade (``db.stats``,
``db.activity``, ``db.slowlog``) rather than importing
:mod:`repro.pgsim`, keeping ``repro.common`` import-light; families
whose backing object is absent are simply skipped, so a bare
``Executor(...)`` harness still renders the counters it has.

A scrape is a read-only snapshot: it allocates its output buffer and
walks live dicts via ``.copy()``/list snapshots, never mutating or
locking engine state, so scraping from a monitoring thread is safe
alongside running statements.

:func:`parse_exposition` is the matching strict parser — tests
round-trip every scrape through it, and it validates histogram
bucket monotonicity, so "it parsed" means a real Prometheus scraper
would accept the payload.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Iterable

_METRIC_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")

#: Old family name -> current name.  Families renamed for Prometheus
#: naming-convention compliance stay resolvable through
#: :meth:`Exposition.value`, so dashboards migrating off the old names
#: keep working against fresh scrapes during the transition.
LEGACY_RENAMES = {
    "pgsim_index_recall_last": "pgsim_index_recall_last_ratio",
    "pgsim_index_recall": "pgsim_index_recall_ratio",
}

#: Unit suffixes that violate the base-unit rule (prometheus.io/docs
#: naming): durations are ``_seconds``, sizes are ``_bytes``, ratios
#: are ``_ratio`` — never milliseconds, kilobytes, or percentages.
_NON_BASE_UNIT_SUFFIXES = (
    "_ms",
    "_millis",
    "_milliseconds",
    "_us",
    "_micros",
    "_microseconds",
    "_ns",
    "_nanos",
    "_nanoseconds",
    "_minutes",
    "_hours",
    "_days",
    "_kb",
    "_kib",
    "_mb",
    "_mib",
    "_gb",
    "_gib",
    "_kilobytes",
    "_megabytes",
    "_gigabytes",
    "_percent",
    "_pct",
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)$"
)


def check_family_name(name: str, metric_type: str) -> None:
    """Enforce Prometheus naming conventions on one metric family.

    Raises ``ValueError`` when a counter family does not end in
    ``_total``, or when any family carries a non-base-unit suffix
    (``_ms``, ``_kb``, ``_minutes``, ...).  Applied at both ends:
    :class:`_Writer` refuses to emit a non-conforming family, and
    :func:`parse_exposition` rejects payloads containing one.
    """
    if not _NAME_RE.fullmatch(name):
        raise ValueError(f"invalid metric name {name!r}")
    if metric_type == "counter" and not name.endswith("_total"):
        raise ValueError(f"counter family {name!r} must end in '_total'")
    base = name[: -len("_total")] if name.endswith("_total") else name
    for suffix in _NON_BASE_UNIT_SUFFIXES:
        if base.endswith(suffix):
            raise ValueError(
                f"metric family {name!r} uses non-base unit suffix "
                f"{suffix!r}; use base units (_seconds, _bytes, _ratio)"
            )


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


class _Writer:
    """Accumulates one exposition payload family by family."""

    def __init__(self) -> None:
        self._lines: list[str] = []

    def family(self, name: str, metric_type: str, help_text: str) -> None:
        check_family_name(name, metric_type)
        self._lines.append(f"# HELP {name} {help_text}")
        self._lines.append(f"# TYPE {name} {metric_type}")

    def sample(
        self, name: str, value: Any, labels: dict[str, Any] | None = None
    ) -> None:
        if labels:
            rendered = ",".join(
                f'{k}="{_escape_label(str(v))}"' for k, v in labels.items()
            )
            self._lines.append(f"{name}{{{rendered}}} {_format_value(value)}")
        else:
            self._lines.append(f"{name} {_format_value(value)}")

    def histogram(
        self,
        name: str,
        cumulative: Iterable[tuple[float, int]],
        count: int,
        total: float,
        labels: dict[str, Any] | None = None,
    ) -> None:
        """Emit ``_bucket``/``_sum``/``_count`` series for one histogram."""
        base = dict(labels or {})
        for upper, seen in cumulative:
            self.sample(f"{name}_bucket", seen, {**base, "le": _format_value(upper)})
        self.sample(f"{name}_bucket", count, {**base, "le": "+Inf"})
        self.sample(f"{name}_sum", total, base or None)
        self.sample(f"{name}_count", count, base or None)

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


class MetricsRegistry:
    """Snapshot a database's counter families into Prometheus text."""

    def __init__(self, db: Any) -> None:
        self.db = db

    def render(self) -> str:
        w = _Writer()
        stats = getattr(self.db, "stats", None)
        if stats is not None:
            self._buffer_family(w, stats)
            self._wal_family(w, stats)
            self._heap_family(w, stats)
            self._wait_family(w, stats)
            self._statement_family(w, stats)
            self._index_family(w, stats)
            self._quality_family(w, stats)
        activity = getattr(self.db, "activity", None)
        if activity is not None:
            self._activity_family(w, activity)
        slowlog = getattr(self.db, "slowlog", None)
        if slowlog is not None:
            self._slowlog_family(w, slowlog)
        ash = getattr(self.db, "ash", None)
        if ash is not None:
            self._ash_family(w, ash)
        history = getattr(self.db, "stat_history", None)
        if history is not None:
            self._history_family(w, history)
        estimation = getattr(getattr(self.db, "executor", None), "estimation", None)
        if estimation is not None:
            self._estimation_family(w, estimation)
        return w.render()

    # ------------------------------------------------------------------
    # families
    # ------------------------------------------------------------------
    def _buffer_family(self, w: _Writer, stats: Any) -> None:
        s = stats.buffer.stats
        w.family("pgsim_buffer_ops_total", "counter", "Buffer-manager operations.")
        for op in ("hits", "misses", "evictions", "dirty_writebacks"):
            w.sample("pgsim_buffer_ops_total", getattr(s, op), {"op": op})
        w.family("pgsim_buffer_hit_ratio", "gauge", "Buffer-pool hit ratio.")
        w.sample("pgsim_buffer_hit_ratio", float(s.hit_ratio))

    def _wal_family(self, w: _Writer, stats: Any) -> None:
        s = stats.wal.stats
        w.family("pgsim_wal_records_total", "counter", "WAL records appended.")
        w.sample("pgsim_wal_records_total", s.records)
        w.family("pgsim_wal_bytes_total", "counter", "WAL bytes appended.")
        w.sample("pgsim_wal_bytes_total", s.bytes_written)
        w.family("pgsim_wal_flushes_total", "counter", "WAL flush calls.")
        w.sample("pgsim_wal_flushes_total", s.flushes)
        w.family("pgsim_wal_flushed_lsn", "gauge", "Durable WAL position.")
        w.sample("pgsim_wal_flushed_lsn", stats.wal.flushed_lsn)

    def _heap_family(self, w: _Writer, stats: Any) -> None:
        s = stats.heap
        w.family("pgsim_heap_tuples_total", "counter", "Heap tuple operations.")
        for op in ("fetched", "inserted", "deleted", "updated"):
            w.sample(
                "pgsim_heap_tuples_total", getattr(s, f"tuples_{op}"), {"op": op}
            )

    def _wait_family(self, w: _Writer, stats: Any) -> None:
        # Local import intentionally avoided: the event-type mapping
        # lives next to the wait stats in repro.common.obs.
        from repro.common.obs import WAIT_EVENT_TYPES

        waits = stats.waits
        counts = dict(waits.counts)
        seconds = dict(waits.seconds)
        w.family("pgsim_wait_events_total", "counter", "Wait-event occurrences.")
        for event in sorted(counts):
            w.sample(
                "pgsim_wait_events_total",
                counts[event],
                {"type": WAIT_EVENT_TYPES.get(event, "Extension"), "event": event},
            )
        w.family(
            "pgsim_wait_seconds_total", "counter", "Seconds blocked per wait event."
        )
        for event in sorted(counts):
            w.sample(
                "pgsim_wait_seconds_total",
                seconds.get(event, 0.0),
                {"type": WAIT_EVENT_TYPES.get(event, "Extension"), "event": event},
            )

    def _statement_family(self, w: _Writer, stats: Any) -> None:
        statements = dict(stats.statements)
        w.family(
            "pgsim_statement_calls_total",
            "counter",
            "Executions per normalized statement.",
        )
        for text in sorted(statements):
            w.sample(
                "pgsim_statement_calls_total",
                statements[text].calls,
                {"query": text},
            )
        w.family(
            "pgsim_statement_rows_total",
            "counter",
            "Rows returned per normalized statement.",
        )
        for text in sorted(statements):
            w.sample(
                "pgsim_statement_rows_total", statements[text].rows, {"query": text}
            )
        # One merged duration histogram across all statements: the
        # per-query split lives in the calls/rows counters, while the
        # latency distribution is what dashboards alert on.
        merged_count = 0
        merged_total = 0.0
        merged: Any = None
        for entry in statements.values():
            h = entry.histogram
            merged_count += h.count
            merged_total += h.total_seconds
            if merged is None:
                merged = type(h)()
            merged.merge(h)
        w.family(
            "pgsim_statement_duration_seconds",
            "histogram",
            "Statement latency across all normalized statements.",
        )
        w.histogram(
            "pgsim_statement_duration_seconds",
            merged.cumulative_buckets() if merged is not None else [],
            merged_count,
            merged_total,
        )

    def _index_family(self, w: _Writer, stats: Any) -> None:
        infos = list(stats.iter_indexes())
        w.family("pgsim_index_scans_total", "counter", "Index scans per index.")
        for info in infos:
            s = getattr(info.am, "scan_stats", None)
            if s is not None:
                w.sample(
                    "pgsim_index_scans_total",
                    s.scans,
                    {"index": info.name, "table": info.table_name, "am": info.am_name},
                )
        w.family(
            "pgsim_index_candidates_total",
            "counter",
            "Distance computations per index (the nprobe/efs amplification).",
        )
        for info in infos:
            s = getattr(info.am, "scan_stats", None)
            if s is not None:
                w.sample(
                    "pgsim_index_candidates_total",
                    s.candidates,
                    {"index": info.name, "table": info.table_name, "am": info.am_name},
                )

    def _quality_family(self, w: _Writer, stats: Any) -> None:
        quality = dict(getattr(stats, "quality", {}) or {})
        w.family(
            "pgsim_index_recall_ratio",
            "histogram",
            "Observed recall@k of sampled index scans vs the brute-force oracle.",
        )
        for name in sorted(quality):
            entry = quality[name]
            h = entry.histogram
            w.histogram(
                "pgsim_index_recall_ratio",
                h.cumulative_buckets(),
                h.count,
                h.total,
                {"index": entry.index_name, "am": entry.am_name},
            )
        w.family(
            "pgsim_index_recall_last_ratio",
            "gauge",
            "Most recently observed recall@k.",
        )
        for name in sorted(quality):
            entry = quality[name]
            w.sample(
                "pgsim_index_recall_last_ratio",
                entry.histogram.last_value,
                {"index": entry.index_name, "am": entry.am_name},
            )

    def _activity_family(self, w: _Writer, activity: Any) -> None:
        counts = activity.state_counts()
        w.family("pgsim_backends", "gauge", "Live backends by state.")
        for state in sorted(counts):
            w.sample("pgsim_backends", counts[state], {"state": state})
        backends = activity.backends()
        w.family(
            "pgsim_backend_statements_total",
            "counter",
            "Statements executed per backend.",
        )
        for b in backends:
            w.sample(
                "pgsim_backend_statements_total",
                b.statements,
                {"pid": b.backend_id, "name": b.name},
            )
        w.family(
            "pgsim_backend_lock_wait_seconds_total",
            "counter",
            "Seconds spent waiting on the statement lock per backend.",
        )
        for b in backends:
            w.sample(
                "pgsim_backend_lock_wait_seconds_total",
                b.lock_wait_seconds,
                {"pid": b.backend_id, "name": b.name},
            )

    def _slowlog_family(self, w: _Writer, slowlog: Any) -> None:
        w.family(
            "pgsim_slow_queries_total",
            "counter",
            "Statements logged past log_min_duration_statement.",
        )
        w.sample("pgsim_slow_queries_total", slowlog.total_logged)
        w.family(
            "pgsim_slow_queries_retained", "gauge", "Slow-query records in the ring."
        )
        w.sample("pgsim_slow_queries_retained", len(slowlog.records()))

    def _ash_family(self, w: _Writer, ash: Any) -> None:
        w.family(
            "pgsim_ash_samples_total",
            "counter",
            "Active-session-history samples taken (pg_ash).",
        )
        w.sample("pgsim_ash_samples_total", ash.total_samples)
        w.family(
            "pgsim_ash_retained", "gauge", "ASH samples currently in the ring."
        )
        w.sample("pgsim_ash_retained", len(ash))

    def _history_family(self, w: _Writer, history: Any) -> None:
        w.family(
            "pgsim_stat_history_ticks_total",
            "counter",
            "Stat-history sampling ticks taken (pg_stat_history).",
        )
        w.sample("pgsim_stat_history_ticks_total", history.total_ticks)
        w.family(
            "pgsim_stat_history_retained",
            "gauge",
            "Stat-history rows currently in the ring.",
        )
        w.sample("pgsim_stat_history_retained", len(history))

    def _estimation_family(self, w: _Writer, estimation: Any) -> None:
        w.family(
            "pgsim_estimation_records_total",
            "counter",
            "Plan nodes recorded into pg_stat_estimation_errors.",
        )
        w.sample("pgsim_estimation_records_total", estimation.total_recorded)
        w.family(
            "pgsim_estimation_max_q_error",
            "gauge",
            "Worst estimate-vs-actual q-error across tracked plan nodes.",
        )
        w.sample("pgsim_estimation_max_q_error", estimation.max_q_error())


# ----------------------------------------------------------------------
# parser (test/CLI round-trip validation)
# ----------------------------------------------------------------------


@dataclass(slots=True)
class Sample:
    """One parsed sample line."""

    name: str
    labels: dict[str, str]
    value: float


@dataclass
class Exposition:
    """Parsed text-format payload with lookup helpers."""

    samples: list[Sample] = field(default_factory=list)
    types: dict[str, str] = field(default_factory=dict)
    helps: dict[str, str] = field(default_factory=dict)

    def value(self, name: str, **labels: str) -> float | None:
        """The value of the sample matching ``name`` and ``labels`` exactly.

        Legacy family names (see :data:`LEGACY_RENAMES`) resolve to
        their renamed successors, including derived histogram series —
        ``pgsim_index_recall_count`` finds
        ``pgsim_index_recall_ratio_count``.
        """
        want = {k: str(v) for k, v in labels.items()}
        for s in self.samples:
            if s.name == name and s.labels == want:
                return s.value
        for old, new in LEGACY_RENAMES.items():
            if name == old or name.startswith(old + "_"):
                renamed = name.replace(old, new, 1)
                for s in self.samples:
                    if s.name == renamed and s.labels == want:
                        return s.value
        return None

    def family(self, name: str) -> list[Sample]:
        return [s for s in self.samples if s.name.startswith(name)]


def _parse_labels(raw: str) -> dict[str, str]:
    """Parse ``k="v",...`` handling ``\\\\``/``\\"``/``\\n`` escapes."""
    labels: dict[str, str] = {}
    i = 0
    n = len(raw)
    while i < n:
        match = _NAME_RE.match(raw, i)
        if match is None:
            raise ValueError(f"bad label name at {raw[i:]!r}")
        key = match.group(0)
        i = match.end()
        if raw[i : i + 2] != '="':
            raise ValueError(f"expected '=\"' after label {key!r}")
        i += 2
        out: list[str] = []
        while i < n and raw[i] != '"':
            ch = raw[i]
            if ch == "\\":
                esc = raw[i + 1 : i + 2]
                if esc == "n":
                    out.append("\n")
                elif esc in ('"', "\\"):
                    out.append(esc)
                else:
                    raise ValueError(f"bad escape \\{esc} in label {key!r}")
                i += 2
            else:
                out.append(ch)
                i += 1
        if i >= n:
            raise ValueError(f"unterminated label value for {key!r}")
        i += 1  # closing quote
        labels[key] = "".join(out)
        if i < n:
            if raw[i] != ",":
                raise ValueError(f"expected ',' between labels at {raw[i:]!r}")
            i += 1
    return labels


def _parse_number(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    return float(raw)  # raises ValueError on garbage, incl. "NaN" ok


def parse_exposition(text: str) -> Exposition:
    """Strictly parse a Prometheus text-format payload.

    Raises ``ValueError`` on any malformed line, on a ``# TYPE`` with
    an unknown metric type, on families violating Prometheus naming
    conventions (counters without ``_total``, non-base-unit suffixes —
    see :func:`check_family_name`), and on histogram families whose
    ``le`` buckets are not cumulative (non-decreasing with ascending
    bound, ``+Inf`` bucket equal to ``_count``).
    """
    exp = Exposition()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP ") :]
            name, _, help_text = rest.partition(" ")
            if not _NAME_RE.fullmatch(name):
                raise ValueError(f"line {lineno}: bad HELP metric name {name!r}")
            exp.helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE ") :]
            name, _, metric_type = rest.partition(" ")
            if not _NAME_RE.fullmatch(name):
                raise ValueError(f"line {lineno}: bad TYPE metric name {name!r}")
            if metric_type not in _METRIC_TYPES:
                raise ValueError(f"line {lineno}: unknown metric type {metric_type!r}")
            try:
                check_family_name(name, metric_type)
            except ValueError as exc:
                raise ValueError(f"line {lineno}: {exc}") from None
            exp.types[name] = metric_type
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        labels = _parse_labels(match.group("labels") or "")
        try:
            value = _parse_number(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value {match.group('value')!r}"
            ) from None
        exp.samples.append(Sample(match.group("name"), labels, value))
    _validate_histograms(exp)
    return exp


def _validate_histograms(exp: Exposition) -> None:
    for name, metric_type in exp.types.items():
        if metric_type != "histogram":
            continue
        # Group buckets by their non-le labels (one series per group).
        series: dict[tuple, list[tuple[float, float]]] = {}
        counts: dict[tuple, float] = {}
        for s in exp.samples:
            base = tuple(sorted((k, v) for k, v in s.labels.items() if k != "le"))
            if s.name == f"{name}_bucket":
                series.setdefault(base, []).append(
                    (_parse_number(s.labels["le"]), s.value)
                )
            elif s.name == f"{name}_count":
                counts[base] = s.value
        for base, buckets in series.items():
            buckets.sort(key=lambda b: b[0])
            prev = 0.0
            for upper, seen in buckets:
                if seen < prev:
                    raise ValueError(
                        f"histogram {name}{dict(base)}: bucket le={upper} "
                        f"count {seen} < previous {prev}"
                    )
                prev = seen
            if not buckets or buckets[-1][0] != float("inf"):
                raise ValueError(f"histogram {name}{dict(base)}: missing +Inf bucket")
            expected = counts.get(base)
            if expected is not None and buckets[-1][1] != expected:
                raise ValueError(
                    f"histogram {name}{dict(base)}: +Inf bucket "
                    f"{buckets[-1][1]} != _count {expected}"
                )
