"""Deterministic parallel-execution model: the paper's RC#3 substrate.

The paper's multi-threading experiments (Figs. 9 and 18) measure how
index construction and intra-query search scale with 1–8 OS threads.
CPython's GIL makes real thread scaling of scalar code unmeasurable in
Python, so — per the substitution policy in DESIGN.md — this module
*executes the work for real but simulates the clock*: callers run each
work unit serially, record its measured cost, and the scheduler below
computes the wall-clock a ``t``-thread execution would take.

Two effects the paper identifies are modelled explicitly:

* **Work partitioning** — units are placed on threads with the classic
  LPT (longest-processing-time-first) greedy heuristic, giving
  near-linear scaling when units are plentiful and balanced.
* **Shared-structure contention** — PASE's parallel search pushes every
  candidate into one *global heap under a lock* (Sec. VII-D), so each
  push is a serial section; Faiss's local-heap-merge design has almost
  none.  Serial sections cannot overlap, and every handoff between
  threads costs extra (cache-line bouncing), so lock-heavy designs stop
  scaling — exactly Fig. 18's PASE curves.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

#: Modelled cost of one uncontended lock acquire/release + heap push
#: critical section, in seconds.  Calibrated to a few hundred ns, the
#: order of a real pthread mutex handoff.
DEFAULT_LOCK_OP_SECONDS = 2.5e-7

#: Extra cost multiplier per additional contending thread: each handoff
#: of a contended lock bounces the cache line between cores.
DEFAULT_CONTENTION_FACTOR = 0.6


@dataclass(slots=True)
class WorkUnit:
    """One schedulable unit of measured work.

    Attributes:
        compute_seconds: perfectly parallelizable part (distance
            computations, bucket scans, ...).
        serial_ops: number of global-lock critical sections the unit
            executes (0 for lock-free designs).
    """

    compute_seconds: float
    serial_ops: int = 0


@dataclass(slots=True)
class ScheduleResult:
    """Outcome of simulating one thread count."""

    n_threads: int
    wall_seconds: float
    compute_seconds: float
    serial_seconds: float
    thread_loads: list[float] = field(default_factory=list)

    @property
    def speedup_base(self) -> float:
        """Ideal single-thread time (for external speedup computation)."""
        return self.compute_seconds + self.serial_seconds


def lpt_makespan(costs: list[float], n_threads: int) -> tuple[float, list[float]]:
    """Greedy LPT schedule: place each unit on the least-loaded thread.

    Returns ``(makespan, per-thread loads)``.  LPT is within 4/3 of the
    optimal makespan, plenty for modelling benchmark-scale scheduling.
    """
    if n_threads <= 0:
        raise ValueError(f"n_threads must be positive, got {n_threads}")
    loads = [0.0] * n_threads
    if not costs:
        return 0.0, loads
    heap = [(0.0, t) for t in range(n_threads)]
    heapq.heapify(heap)
    for cost in sorted(costs, reverse=True):
        load, tid = heapq.heappop(heap)
        load += cost
        loads[tid] = load
        heapq.heappush(heap, (load, tid))
    return max(loads), loads


def simulate_schedule(
    units: list[WorkUnit],
    n_threads: int,
    lock_op_seconds: float = DEFAULT_LOCK_OP_SECONDS,
    contention_factor: float = DEFAULT_CONTENTION_FACTOR,
) -> ScheduleResult:
    """Simulate wall-clock of running ``units`` on ``n_threads`` threads.

    The model: compute parts schedule freely (LPT); serial sections
    form a single global critical path whose per-op cost grows with the
    number of *other* threads contending:

    ``serial = total_ops * lock_op_seconds * (1 + contention_factor * (t - 1))``

    Wall time is the compute makespan plus the serial critical path —
    a conservative (paper-consistent) Amdahl-style composition.
    """
    compute = sum(u.compute_seconds for u in units)
    total_ops = sum(u.serial_ops for u in units)
    makespan, loads = lpt_makespan([u.compute_seconds for u in units], n_threads)
    contention = 1.0 + contention_factor * max(n_threads - 1, 0)
    serial = total_ops * lock_op_seconds * contention
    return ScheduleResult(
        n_threads=n_threads,
        wall_seconds=makespan + serial,
        compute_seconds=compute,
        serial_seconds=serial,
        thread_loads=loads,
    )


def scaling_curve(
    units: list[WorkUnit],
    thread_counts: list[int],
    lock_op_seconds: float = DEFAULT_LOCK_OP_SECONDS,
    contention_factor: float = DEFAULT_CONTENTION_FACTOR,
) -> dict[int, ScheduleResult]:
    """Simulate a whole thread sweep (the paper uses 1, 2, 4, 8)."""
    return {
        t: simulate_schedule(units, t, lock_op_seconds, contention_factor)
        for t in thread_counts
    }


def speedups(curve: dict[int, ScheduleResult]) -> dict[int, float]:
    """Speedup of each thread count relative to the 1-thread result."""
    if 1 not in curve:
        raise ValueError("scaling curve must include the 1-thread baseline")
    base = curve[1].wall_seconds
    return {t: (base / r.wall_seconds if r.wall_seconds > 0 else float("inf")) for t, r in curve.items()}
