"""Evaluation metrics: recall@k, latency statistics, QPS.

The paper's metrics (Sec. IV-D) are index construction time, index
size, query time, and recall rate.  Construction time and size are
reported by the indexes themselves (:class:`~repro.common.types.BuildStats`,
:class:`~repro.common.types.IndexSizeInfo`); this module covers the
query-side metrics.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


def recall_at_k(result_ids: Sequence[int], truth_ids: Sequence[int], k: int) -> float:
    """Fraction of the true top-``k`` found in the returned top-``k``.

    This is the standard ANN-benchmarks definition the paper's
    datasets ship ground truth for.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    truth = set(int(i) for i in truth_ids[:k])
    if not truth:
        return 0.0
    found = sum(1 for i in result_ids[:k] if int(i) in truth)
    return found / len(truth)


def mean_recall_at_k(
    all_result_ids: Sequence[Sequence[int]],
    ground_truth: np.ndarray,
    k: int,
) -> float:
    """Average :func:`recall_at_k` over a query batch."""
    if len(all_result_ids) != ground_truth.shape[0]:
        raise ValueError(
            f"result count {len(all_result_ids)} != ground truth rows {ground_truth.shape[0]}"
        )
    total = 0.0
    for ids, truth in zip(all_result_ids, ground_truth):
        total += recall_at_k(ids, truth.tolist(), k)
    return total / len(all_result_ids)


@dataclass(slots=True)
class LatencyStats:
    """Summary statistics over per-query latencies (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    total: float

    @property
    def qps(self) -> float:
        """Queries per second over the whole batch."""
        if self.total <= 0.0:
            return float("inf")
        return self.count / self.total

    @property
    def mean_ms(self) -> float:
        """Mean latency in milliseconds, the unit the paper plots."""
        return self.mean * 1e3


def latency_stats(latencies: Iterable[float]) -> LatencyStats:
    """Summarize a sequence of per-query wall-clock latencies."""
    values = sorted(float(v) for v in latencies)
    if not values:
        raise ValueError("need at least one latency sample")

    def pct(p: float) -> float:
        idx = min(int(round(p * (len(values) - 1))), len(values) - 1)
        return values[idx]

    return LatencyStats(
        count=len(values),
        mean=statistics.fmean(values),
        p50=pct(0.50),
        p95=pct(0.95),
        p99=pct(0.99),
        total=sum(values),
    )
