"""Seeded random-number helpers.

Every stochastic component in the library (dataset generation, k-means
initialization, HNSW level assignment, sampling) draws its randomness
through this module so that experiments are bit-reproducible given a
seed.
"""

from __future__ import annotations

import zlib

import numpy as np

DEFAULT_SEED = 0x5A17


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a NumPy :class:`~numpy.random.Generator` for ``seed``.

    ``None`` selects the library-wide default seed (experiments stay
    reproducible unless the caller explicitly asks for entropy).
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive_seed(seed: int, *salt: int | str) -> int:
    """Derive a child seed from ``seed`` and a salt tuple.

    Used when one seeded experiment needs several independent random
    streams (e.g. one for base vectors and one for queries) that must
    not collide.
    """
    mixed = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
    for part in salt:
        if isinstance(part, str):
            # zlib.crc32 is stable across processes, unlike built-in
            # str hashing (randomized by PYTHONHASHSEED).
            part_val = np.uint64(zlib.crc32(part.encode("utf-8")))
        else:
            part_val = np.uint64(part & 0xFFFFFFFFFFFFFFFF)
        # SplitMix64-style mixing keeps child streams well separated.
        mixed = np.uint64((int(mixed) + 0x9E3779B97F4A7C15 + int(part_val)) & 0xFFFFFFFFFFFFFFFF)
        z = int(mixed)
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        mixed = np.uint64(z ^ (z >> 31))
    return int(mixed) & 0x7FFFFFFF
