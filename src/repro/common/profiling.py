"""A ``perf``-like category profiler.

The paper uses Linux ``perf`` and Flame Graphs to attribute execution
time to functions such as ``fvec_L2sqr``, ``Tuple Access``,
``Min-heap``, ``HVTGet`` and ``SearchNbToAdd`` (Tables III and V,
Fig. 8).  This reproduction instruments the same code regions
explicitly: engines wrap each region in ``profiler.section(name)`` and
the harness renders breakdown tables with the same relative/absolute
format the paper uses.

Sections nest; time is attributed *exclusively* to the innermost open
section, keyed by the full section path, so both flat totals
(``inclusive_seconds``) and drill-downs (``breakdown(within=...)``)
are available — mirroring how the paper first shows the
``SearchNbToAdd`` share of HNSW construction (Table III) and then
drills into it (Fig. 8).
"""

from __future__ import annotations

import json
import time
from collections import defaultdict
from dataclasses import dataclass


@dataclass(slots=True)
class BreakdownRow:
    """One row of a profile breakdown table."""

    name: str
    seconds: float
    fraction: float
    calls: int


class _NullSection:
    """Do-nothing context manager returned by disabled profilers.

    A single shared instance keeps the disabled-profiler cost of
    ``with profiler.section(...)`` to two cheap method calls, which
    matters in the engines' inner loops.
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SECTION = _NullSection()


class _Section:
    """Live profiling section (see :meth:`Profiler.section`)."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> None:
        prof = self._profiler
        now = time.perf_counter()
        if prof._stack:
            prof._exclusive[tuple(prof._stack)] += now - prof._last_ts
        prof._stack.append(self._name)
        prof._calls[tuple(prof._stack)] += 1
        prof._last_ts = now
        tracer = prof.tracer
        if tracer is not None and tracer.enabled:
            tracer.begin(self._name, now)

    def __exit__(self, *exc_info) -> None:
        prof = self._profiler
        now = time.perf_counter()
        prof._exclusive[tuple(prof._stack)] += now - prof._last_ts
        prof._stack.pop()
        prof._last_ts = now
        tracer = prof.tracer
        if tracer is not None and tracer.enabled:
            tracer.end(now)


class Profiler:
    """Hierarchical category profiler with exclusive-time accounting.

    A disabled profiler (``enabled=False``) turns :meth:`section` into
    a near-no-op so production paths can keep their instrumentation.

    With a :class:`~repro.common.tracing.Tracer` attached (``tracer=``),
    every section additionally records a real timestamped span — the
    exports then render the actual timeline (see
    :meth:`to_chrome_trace` / :meth:`to_collapsed`) while breakdown
    tables keep coming from the aggregate counters.
    """

    def __init__(self, enabled: bool = True, tracer=None) -> None:
        self.enabled = enabled
        #: Optional attached :class:`repro.common.tracing.Tracer`;
        #: sections open/close spans on it using their own timestamps.
        self.tracer = tracer
        self._stack: list[str] = []
        self._last_ts = 0.0
        self._exclusive: dict[tuple[str, ...], float] = defaultdict(float)
        self._calls: dict[tuple[str, ...], int] = defaultdict(int)

    def reset(self) -> None:
        """Drop all recorded samples (open sections must be closed)."""
        if self._stack:
            raise RuntimeError(f"cannot reset with open sections: {self._stack}")
        self._exclusive.clear()
        self._calls.clear()
        if self.tracer is not None:
            self.tracer.reset()

    def section(self, name: str) -> "_Section | _NullSection":
        """Attribute enclosed wall time to ``name`` (nested-aware)."""
        if not self.enabled:
            return _NULL_SECTION
        return _Section(self, name)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def exclusive_seconds(self, name: str) -> float:
        """Time spent directly inside sections named ``name``."""
        return sum(t for path, t in self._exclusive.items() if path[-1] == name)

    def inclusive_seconds(self, name: str) -> float:
        """Time spent inside ``name`` including nested child sections."""
        return sum(t for path, t in self._exclusive.items() if name in path)

    def total_seconds(self) -> float:
        """All recorded time."""
        return sum(self._exclusive.values())

    def call_count(self, name: str) -> int:
        """Number of times a section named ``name`` was entered."""
        return sum(c for path, c in self._calls.items() if path[-1] == name)

    def breakdown(self, within: str | None = None, self_label: str = "Others") -> list[BreakdownRow]:
        """Group recorded time into top-level buckets.

        Args:
            within: when ``None``, bucket by each path's first element
                (a Table III-style top-level breakdown).  Otherwise
                restrict to paths containing ``within`` and bucket by
                the element immediately following it (a Fig. 8-style
                drill-down); time spent in ``within`` itself, outside
                any child, lands in ``self_label``.
            self_label: bucket name for un-attributed parent time.

        Returns rows sorted by descending time, fractions relative to
        the grouped total.
        """
        buckets: dict[str, float] = defaultdict(float)
        calls: dict[str, int] = defaultdict(int)
        for path, seconds in self._exclusive.items():
            if within is None:
                bucket = path[0]
            else:
                if within not in path:
                    continue
                idx = len(path) - 1 - path[::-1].index(within)
                bucket = path[idx + 1] if idx + 1 < len(path) else self_label
            buckets[bucket] += seconds
        for path, count in self._calls.items():
            if within is None:
                # Only length-1 paths are *entries into* the top-level
                # bucket; adding nested-child entries would over-report
                # the paper-style tables' "calls" columns.
                if len(path) == 1:
                    calls[path[0]] += count
            elif within in path:
                idx = len(path) - 1 - path[::-1].index(within)
                # Same rule one level down: a path counts as a call of
                # its bucket only when the bucket is the innermost
                # element, i.e. the path is an *entry into* the bucket
                # and not into some grandchild.
                if idx + 2 == len(path):
                    calls[path[idx + 1]] += count
                elif idx + 1 == len(path):
                    calls[self_label] += count
        total = sum(buckets.values())
        rows = [
            BreakdownRow(
                name=name,
                seconds=seconds,
                fraction=seconds / total if total > 0 else 0.0,
                calls=calls.get(name, 0),
            )
            for name, seconds in buckets.items()
        ]
        rows.sort(key=lambda r: r.seconds, reverse=True)
        return rows

    def merge(self, other: "Profiler") -> None:
        """Accumulate another profiler's samples into this one."""
        for path, seconds in other._exclusive.items():
            self._exclusive[path] += seconds
        for path, count in other._calls.items():
            self._calls[path] += count

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_collapsed(self) -> str:
        """Collapsed-stack export (``flamegraph.pl`` input format).

        With an attached tracer that holds spans, weights come from the
        recorded span tree (identical totals, span-exact attribution).
        Otherwise, one line per recorded section path: frame names joined by
        ``;`` followed by a space and the path's *exclusive* time as
        integer microseconds (flamegraph.pl splits each line on the
        last whitespace run, so frame names may themselves contain
        spaces — ``Tuple Access`` survives round-tripping).  Paths
        whose exclusive time rounds to zero microseconds but were
        entered at least once are kept with weight 1 so they still
        show up in the flamegraph.

        Pipe the result straight through the stock tooling::

            flamegraph.pl profile.collapsed > profile.svg
        """
        if self.tracer is not None and self.tracer.spans:
            return self.tracer.to_collapsed()
        lines = []
        for path in sorted(self._exclusive):
            micros = round(self._exclusive[path] * 1e6)
            if micros <= 0:
                if self._calls.get(path, 0) <= 0:
                    continue
                micros = 1
            lines.append(";".join(path) + f" {micros}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome_trace(self) -> str:
        """Chrome ``trace_event`` JSON export (``chrome://tracing``).

        With an attached tracer that holds spans, this is the *real*
        recorded timeline — every section entry as its own event with
        actual timestamps (see
        :meth:`repro.common.tracing.Tracer.to_chrome_trace`).

        Without one, the profiler only has per-path aggregates, so it
        synthesises one complete (``ph: "X"``) event
        per path: children are laid out consecutively inside their
        parent starting at the parent's start, durations are the
        path's *inclusive* time.  Relative widths and nesting match
        the recorded profile exactly; absolute positions are
        synthetic.  Deterministic for a given set of samples.
        """
        if self.tracer is not None and self.tracer.spans:
            return self.tracer.to_chrome_trace()
        children: dict[tuple[str, ...], list[tuple[str, ...]]] = {}
        for path in self._exclusive:
            for depth in range(1, len(path) + 1):
                prefix, parent = path[:depth], path[: depth - 1]
                siblings = children.setdefault(parent, [])
                if prefix not in siblings:
                    siblings.append(prefix)
        for siblings in children.values():
            siblings.sort()

        def inclusive(path: tuple[str, ...]) -> float:
            total = self._exclusive.get(path, 0.0)
            for child in children.get(path, []):
                total += inclusive(child)
            return total

        events: list[dict] = []

        def emit(path: tuple[str, ...], start_us: int) -> None:
            events.append(
                {
                    "name": path[-1],
                    "cat": "profiler",
                    "ph": "X",
                    "ts": start_us,
                    "dur": max(round(inclusive(path) * 1e6), 1),
                    "pid": 1,
                    "tid": 1,
                    "args": {
                        "calls": self._calls.get(path, 0),
                        "exclusive_us": round(self._exclusive.get(path, 0.0) * 1e6),
                    },
                }
            )
            cursor = start_us
            for child in children.get(path, []):
                emit(child, cursor)
                cursor += max(round(inclusive(child) * 1e6), 1)

        cursor = 0
        for root in children.get((), []):
            emit(root, cursor)
            cursor += max(round(inclusive(root) * 1e6), 1)
        return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}, indent=1)

    def report(self, within: str | None = None, title: str | None = None) -> str:
        """Render a paper-style breakdown table (relative % + absolute)."""
        rows = self.breakdown(within=within)
        lines: list[str] = []
        if title:
            lines.append(title)
        width = max((len(r.name) for r in rows), default=10)
        for row in rows:
            lines.append(
                f"  {row.name:<{width}}  {row.fraction * 100:6.2f}%  "
                f"{row.seconds * 1e3:10.2f} ms  ({row.calls} calls)"
            )
        if not rows:
            lines.append("  (no samples)")
        return "\n".join(lines)


class _FrozenProfiler(Profiler):
    """Permanently disabled profiler (the type of :data:`NULL_PROFILER`).

    ``NULL_PROFILER`` is shared by every engine that opts out of
    profiling; a caller flipping ``.enabled = True`` on it would
    silently turn on profiling — and mix samples — for all of them.
    This subclass makes that a loud error instead, as does merging
    samples into it.
    """

    def __setattr__(self, name: str, value) -> None:
        if name == "enabled" and value:
            raise TypeError(
                "NULL_PROFILER is shared and permanently disabled; "
                "create your own Profiler() instead of enabling it"
            )
        super().__setattr__(name, value)

    def merge(self, other: Profiler) -> None:
        raise TypeError(
            "NULL_PROFILER is shared and cannot accumulate samples; "
            "merge into your own Profiler() instead"
        )


#: Shared do-nothing profiler for callers that do not want profiling.
#: Permanently disabled — attempts to enable it raise (see
#: :class:`_FrozenProfiler`).
NULL_PROFILER = _FrozenProfiler(enabled=False)
