"""HNSW graph algorithm, parameterized over a storage backend.

The paper's central HNSW finding is that PASE and Faiss run the *same
algorithm* but on different substrates: Faiss dereferences in-memory
arrays while PASE goes through PostgreSQL's buffer manager and
page-structured tuples, which is where the construction-time (RC#2)
and index-size (RC#4) gaps come from (Secs. V-C, VI-C).

To make that comparison airtight, this module implements the HNSW
algorithm once, against the :class:`GraphStore` protocol.  The
specialized engine plugs in an array-backed store
(:class:`repro.specialized.hnsw.ArrayGraphStore`); the generalized
engine plugs in a page-backed store whose every access pays the buffer
manager toll (:class:`repro.pase.hnsw.PageGraphStore`).  Any
performance difference between the two engines is then attributable
purely to the substrate — the paper's experimental design, enforced by
construction.

Profiling section names follow the paper's Fig. 8 legend exactly
(``fvec_L2sqr``, ``Tuple Access``, ``HVTGet``, ``pasepfirst``) and its
Table III phases (``SearchNbToAdd``, ``AddLink``, ``GreedyUpdate``,
``ShrinkNbList``) so breakdown tables can be regenerated verbatim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.common.heap import BoundedMaxHeap
from repro.common.profiling import Profiler
from repro.common.types import Neighbor

# Paper-aligned profiling section names (Table III and Fig. 8).
SEC_SEARCH_NB_TO_ADD = "SearchNbToAdd"
SEC_ADD_LINK = "AddLink"
SEC_GREEDY_UPDATE = "GreedyUpdate"
SEC_SHRINK_NB_LIST = "ShrinkNbList"
SEC_DISTANCE = "fvec_L2sqr"
SEC_TUPLE_ACCESS = "Tuple Access"
SEC_VISITED = "HVTGet"
SEC_NEIGHBOR_FETCH = "pasepfirst"


@dataclass(slots=True)
class HNSWParams:
    """HNSW hyper-parameters, named as in the paper's Table II.

    Attributes:
        bnn: base neighbor count; level-0 nodes keep ``2 * bnn``
            neighbors, upper levels keep ``bnn`` (Sec. II-B).
        efb: priority-queue length during construction.
        efs: priority-queue length during search.
        level_mult: level-sampling multiplier; defaults to
            ``1 / ln(bnn)`` as in the HNSW paper.
    """

    bnn: int = 16
    efb: int = 40
    efs: int = 200
    level_mult: float | None = None

    def __post_init__(self) -> None:
        if self.bnn < 2:
            raise ValueError(f"bnn must be >= 2, got {self.bnn}")
        if self.efb < 1 or self.efs < 1:
            raise ValueError("efb and efs must be >= 1")

    def max_neighbors(self, level: int) -> int:
        """Neighbor-list capacity at ``level``."""
        return 2 * self.bnn if level == 0 else self.bnn

    def effective_level_mult(self) -> float:
        """Level multiplier, defaulting to ``1 / ln(bnn)``."""
        if self.level_mult is not None:
            return self.level_mult
        return 1.0 / math.log(self.bnn)

    def sample_level(self, rng: np.random.Generator) -> int:
        """Draw a node's top level from the HNSW geometric-ish law."""
        u = float(rng.random())
        u = max(u, 1e-12)  # guard against log(0)
        return int(-math.log(u) * self.effective_level_mult())


@dataclass(slots=True)
class GraphCounters:
    """Work counters accumulated by the algorithm."""

    distance_computations: int = 0
    hops: int = 0
    visited_checks: int = 0


class VisitedSet(Protocol):
    """Membership structure used during layer search.

    The array-backed store returns a flat boolean array; the
    page-backed store returns a deliberately indirect structure (the
    paper's ``HVTGet`` cost).
    """

    def add(self, node: int) -> None: ...

    def __contains__(self, node: int) -> bool: ...


class GraphStore(Protocol):
    """Storage backend contract for the HNSW algorithm."""

    profiler: Profiler
    counters: GraphCounters
    entry_point: int | None
    max_level: int

    def vector(self, node: int) -> np.ndarray:
        """Fetch one node's vector."""
        ...

    def vectors(self, nodes: Sequence[int]) -> np.ndarray:
        """Fetch several nodes' vectors as an ``(n, d)`` matrix."""
        ...

    def neighbors(self, node: int, level: int) -> list[int]:
        """Fetch a node's neighbor ids at ``level``."""
        ...

    def set_neighbors(self, node: int, level: int, ids: Sequence[int]) -> None:
        """Replace a node's neighbor list at ``level``."""
        ...

    def add_node(self, vector: np.ndarray, level: int) -> int:
        """Persist a new node with empty neighbor lists; returns its id."""
        ...

    def node_count(self) -> int:
        """Number of nodes stored."""
        ...

    def make_visited(self) -> VisitedSet:
        """Fresh visited-set for one layer search."""
        ...


def _distance_rows(store: GraphStore, query: np.ndarray, nodes: list[int]) -> np.ndarray:
    """Gather node vectors and compute their distances to ``query``.

    The gather is charged to ``Tuple Access`` and the arithmetic to
    ``fvec_L2sqr`` — the two shares the paper contrasts in Fig. 8.
    Both engines run this exact code, so any wall-clock difference
    between them comes from the store, not the kernel.
    """
    prof = store.profiler
    with prof.section(SEC_TUPLE_ACCESS):
        mat = store.vectors(nodes)
    with prof.section(SEC_DISTANCE):
        diff = mat - query
        dists = np.einsum("ij,ij->i", diff, diff)
    store.counters.distance_computations += len(nodes)
    return dists


def search_layer(
    store: GraphStore,
    query: np.ndarray,
    entry_points: list[tuple[float, int]],
    ef: int,
    level: int,
) -> list[tuple[float, int]]:
    """Classic HNSW beam search within one layer.

    Args:
        entry_points: ``(distance, node)`` seeds, distances already
            computed against ``query``.
        ef: beam width (the paper's ``efb``/``efs``).

    Returns up to ``ef`` ``(distance, node)`` pairs sorted ascending.
    """
    import heapq

    prof = store.profiler
    visited = store.make_visited()
    candidates: list[tuple[float, int]] = []
    results = BoundedMaxHeap(ef)
    for dist, node in entry_points:
        visited.add(node)
        heapq.heappush(candidates, (dist, node))
        results.push(dist, node)

    while candidates:
        dist_c, current = heapq.heappop(candidates)
        if dist_c > results.worst_distance:
            break
        store.counters.hops += 1
        with prof.section(SEC_NEIGHBOR_FETCH):
            nbrs = store.neighbors(current, level)
        with prof.section(SEC_VISITED):
            fresh = []
            for nb in nbrs:
                store.counters.visited_checks += 1
                if nb not in visited:
                    visited.add(nb)
                    fresh.append(nb)
        if not fresh:
            continue
        dists = _distance_rows(store, query, fresh)
        worst = results.worst_distance
        for d, nb in zip(dists.tolist(), fresh):
            if len(results) < ef or d < worst:
                results.push(d, nb)
                worst = results.worst_distance
                heapq.heappush(candidates, (d, nb))
    return [(n.distance, n.vector_id) for n in results.results()]


def search_layer_filtered(
    store: GraphStore,
    query: np.ndarray,
    entry_points: list[tuple[float, int]],
    ef: int,
    level: int,
    allow_fn,
) -> list[tuple[float, int]]:
    """Beam search admitting only allowed nodes to the result heap.

    The in-filter variant of :func:`search_layer`: ``allow_fn`` takes a
    list of node ids and returns booleans (True = the node's heap row
    is visible and satisfies the pushed-down predicate).  Filtered-out
    nodes still join the candidate frontier — they *route* — because
    dropping them would disconnect regions whose members all fail the
    predicate (the standard filtered-ANN design; see ACORN and the
    filter-agnostic PostgreSQL study).  Only allowed nodes are pushed
    into the bounded result heap, so the beam keeps expanding until
    ``ef`` allowed nodes bound it.
    """
    import heapq

    prof = store.profiler
    visited = store.make_visited()
    candidates: list[tuple[float, int]] = []
    results = BoundedMaxHeap(ef)
    seeds = [node for __, node in entry_points]
    seed_allowed = list(allow_fn(seeds)) if seeds else []
    for (dist, node), ok in zip(entry_points, seed_allowed):
        visited.add(node)
        heapq.heappush(candidates, (dist, node))
        if ok:
            results.push(dist, node)

    while candidates:
        dist_c, current = heapq.heappop(candidates)
        if dist_c > results.worst_distance:
            break
        store.counters.hops += 1
        with prof.section(SEC_NEIGHBOR_FETCH):
            nbrs = store.neighbors(current, level)
        with prof.section(SEC_VISITED):
            fresh = []
            for nb in nbrs:
                store.counters.visited_checks += 1
                if nb not in visited:
                    visited.add(nb)
                    fresh.append(nb)
        if not fresh:
            continue
        dists = _distance_rows(store, query, fresh)
        allowed = allow_fn(fresh)
        worst = results.worst_distance
        for d, nb, ok in zip(dists.tolist(), fresh, allowed):
            if len(results) < ef or d < worst:
                heapq.heappush(candidates, (d, nb))
                if ok:
                    results.push(d, nb)
                    worst = results.worst_distance
    return [(n.distance, n.vector_id) for n in results.results()]


def greedy_descend(
    store: GraphStore,
    query: np.ndarray,
    start: tuple[float, int],
    from_level: int,
    to_level: int,
) -> tuple[float, int]:
    """Greedy 1-best descent through layers ``from_level .. to_level``.

    This is the paper's ``GreedyUpdate`` phase: at each upper layer,
    repeatedly hop to the closest neighbor until no improvement, then
    drop one layer.
    """
    prof = store.profiler
    best_dist, best_node = start
    for level in range(from_level, to_level - 1, -1):
        improved = True
        while improved:
            improved = False
            with prof.section(SEC_NEIGHBOR_FETCH):
                nbrs = store.neighbors(best_node, level)
            if not nbrs:
                continue
            dists = _distance_rows(store, query, nbrs)
            j = int(np.argmin(dists))
            if float(dists[j]) < best_dist:
                best_dist = float(dists[j])
                best_node = nbrs[j]
                improved = True
                store.counters.hops += 1
    return best_dist, best_node


def _shrink_neighbor_list(
    store: GraphStore,
    owner: int,
    candidate_ids: list[int],
    capacity: int,
) -> list[int]:
    """Shrink an over-full neighbor list with the HNSW heuristic.

    Keeps a diverse subset: a candidate survives only if it is closer
    to the owner than to every already-kept neighbor.  All pairwise
    distances come from one batched kernel call on the gathered
    vectors.
    """
    prof = store.profiler
    with prof.section(SEC_TUPLE_ACCESS):
        owner_vec = store.vector(owner)
        cand_mat = store.vectors(candidate_ids)
    with prof.section(SEC_DISTANCE):
        diff = cand_mat - owner_vec
        to_owner = np.einsum("ij,ij->i", diff, diff)
        sq = np.einsum("ij,ij->i", cand_mat, cand_mat)
        cross = sq[:, None] + sq[None, :] - 2.0 * (cand_mat @ cand_mat.T)
    store.counters.distance_computations += len(candidate_ids) * (len(candidate_ids) + 1)

    # Plain-Python copies make the O(capacity^2) comparison loop cheap.
    cross_rows = cross.tolist()
    owner_dists = to_owner.tolist()
    order = np.argsort(to_owner, kind="stable").tolist()
    kept: list[int] = []
    kept_set: set[int] = set()
    for idx in order:
        if len(kept) >= capacity:
            break
        row = cross_rows[idx]
        d_own = owner_dists[idx]
        if all(row[j] >= d_own for j in kept):
            kept.append(idx)
            kept_set.add(idx)
    # Fall back to nearest-first if the heuristic was too aggressive.
    for idx in order:
        if len(kept) >= capacity:
            break
        if idx not in kept_set:
            kept.append(idx)
            kept_set.add(idx)
    return [candidate_ids[i] for i in kept]


def repair_after_delete(
    store: GraphStore,
    params: HNSWParams,
    dead: set[int],
    node_levels: Sequence[int],
) -> int:
    """Unlink ``dead`` nodes from the graph, bridging around them.

    The VACUUM-side counterpart of :func:`insert`, shared by both HNSW
    substrates: survivors whose neighbor lists reference a dead node
    get the dead node's own surviving neighbors spliced in as bridge
    candidates (so the graph stays connected where the dead node was a
    hub), then the list is re-shrunk with the same diversity heuristic
    construction uses whenever it exceeds ``params.max_neighbors``.
    If the entry point died, the surviving node with the highest level
    takes over.  Dead nodes keep their ids (node ids are positional in
    both stores) but end with empty neighbor lists and are unreachable.

    Returns the number of nodes unlinked.
    """
    if not dead:
        return 0
    count = store.node_count()
    survivors = [n for n in range(count) if n not in dead]
    for node in survivors:
        for level in range(node_levels[node] + 1):
            nbrs = store.neighbors(node, level)
            if not any(nb in dead for nb in nbrs):
                continue
            candidates = [nb for nb in nbrs if nb not in dead]
            seen = set(candidates)
            seen.add(node)
            for nb in nbrs:
                if nb not in dead:
                    continue
                for bridge in store.neighbors(nb, level):
                    if bridge in dead or bridge in seen:
                        continue
                    seen.add(bridge)
                    candidates.append(bridge)
            capacity = params.max_neighbors(level)
            if len(candidates) > capacity:
                with store.profiler.section(SEC_SHRINK_NB_LIST):
                    candidates = _shrink_neighbor_list(store, node, candidates, capacity)
            store.set_neighbors(node, level, candidates)
    if store.entry_point is not None and store.entry_point in dead:
        if survivors:
            best = max(survivors, key=lambda n: node_levels[n])
            store.entry_point = best
            store.max_level = node_levels[best]
        else:
            store.entry_point = None
            store.max_level = -1
    for node in dead:
        if node < count:
            for level in range(node_levels[node] + 1):
                store.set_neighbors(node, level, [])
    return sum(1 for node in dead if node < count)


def insert(
    store: GraphStore,
    params: HNSWParams,
    vector: np.ndarray,
    rng: np.random.Generator,
) -> int:
    """Insert one vector into the graph (the paper's build inner loop).

    Phases are wrapped in the Table III section names so a profiled
    build reproduces the paper's construction-time breakdown.
    """
    prof = store.profiler
    vector = np.ascontiguousarray(vector, dtype=np.float32)
    level = params.sample_level(rng)
    node = store.add_node(vector, level)

    if store.entry_point is None:
        store.entry_point = node
        store.max_level = level
        return node

    entry = store.entry_point
    entry_dist = float(_distance_rows(store, vector, [entry])[0])
    seed = (entry_dist, entry)

    if store.max_level > level:
        with prof.section(SEC_GREEDY_UPDATE):
            seed = greedy_descend(store, vector, seed, store.max_level, level + 1)

    eps = [seed]
    for lc in range(min(level, store.max_level), -1, -1):
        with prof.section(SEC_SEARCH_NB_TO_ADD):
            cands = search_layer(store, vector, eps, params.efb, lc)
        selected = cands[: params.bnn]
        with prof.section(SEC_ADD_LINK):
            store.set_neighbors(node, lc, [nid for _, nid in selected])
        for _, nb in selected:
            with prof.section(SEC_ADD_LINK):
                with prof.section(SEC_NEIGHBOR_FETCH):
                    lst = store.neighbors(nb, lc)
                lst.append(node)
            capacity = params.max_neighbors(lc)
            if len(lst) > capacity:
                # ShrinkNbList is a sibling phase of AddLink in the
                # paper's Table III, so it must not nest inside it.
                with prof.section(SEC_SHRINK_NB_LIST):
                    lst = _shrink_neighbor_list(store, nb, lst, capacity)
            with prof.section(SEC_ADD_LINK):
                store.set_neighbors(nb, lc, lst)
        eps = cands

    if level > store.max_level:
        store.max_level = level
        store.entry_point = node
    return node


def search(
    store: GraphStore,
    params: HNSWParams,
    query: np.ndarray,
    k: int,
    efs: int | None = None,
) -> list[Neighbor]:
    """Top-``k`` HNSW search (skip-list style descent + beam at level 0)."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if store.entry_point is None:
        return []
    prof = store.profiler
    query = np.ascontiguousarray(query, dtype=np.float32)
    ef = max(efs if efs is not None else params.efs, k)

    entry = store.entry_point
    entry_dist = float(_distance_rows(store, query, [entry])[0])
    seed = (entry_dist, entry)
    if store.max_level > 0:
        with prof.section(SEC_GREEDY_UPDATE):
            seed = greedy_descend(store, query, seed, store.max_level, 1)

    with prof.section(SEC_SEARCH_NB_TO_ADD):
        found = search_layer(store, query, [seed], ef, 0)
    return [Neighbor(vector_id=nid, distance=dist) for dist, nid in found[:k]]


def search_filtered(
    store: GraphStore,
    params: HNSWParams,
    query: np.ndarray,
    k: int,
    allow_fn,
    efs: int | None = None,
) -> list[Neighbor]:
    """Top-``k`` in-filter HNSW search: the predicate inside the beam.

    The descent phase routes unfiltered (upper layers only navigate);
    the level-0 beam runs :func:`search_layer_filtered`, so only nodes
    ``allow_fn`` admits can land in the result.  Callers needing k
    matches at low selectivity widen ``efs`` and retry — the AM layer's
    expansion loop — rather than this function guessing a bound.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if store.entry_point is None:
        return []
    prof = store.profiler
    query = np.ascontiguousarray(query, dtype=np.float32)
    ef = max(efs if efs is not None else params.efs, k)

    entry = store.entry_point
    entry_dist = float(_distance_rows(store, query, [entry])[0])
    seed = (entry_dist, entry)
    if store.max_level > 0:
        with prof.section(SEC_GREEDY_UPDATE):
            seed = greedy_descend(store, query, seed, store.max_level, 1)

    with prof.section(SEC_SEARCH_NB_TO_ADD):
        found = search_layer_filtered(store, query, [seed], ef, 0, allow_fn)
    return [Neighbor(vector_id=nid, distance=dist) for dist, nid in found[:k]]
