"""Top-k selection structures: the paper's RC#6.

Faiss keeps a *bounded max-heap of size k* while scanning candidates,
so each push is ``O(log k)`` and most candidates are rejected with a
single comparison against the heap root.  PASE instead pushes every
candidate into a *heap of size n* (all scanned vectors) and pops ``k``
at the end, which the paper identifies as root cause RC#6.

Both designs are implemented here so the engines — and the ablation
benchmarks — can switch between them:

* :class:`BoundedMaxHeap` — the Faiss design.
* :class:`NaiveTopK` — the PASE design.
* :class:`LockedGlobalHeap` — a bounded heap wrapped with a lock whose
  acquisitions are *counted*, feeding the parallel-contention model of
  RC#3 (PASE's intra-query parallelism shares one global heap).
"""

from __future__ import annotations

import heapq
import threading

from repro.common.types import Neighbor


class BoundedMaxHeap:
    """Keep the ``k`` smallest ``(distance, id)`` pairs seen so far.

    Internally a max-heap on distance (stored negated for
    :mod:`heapq`'s min-heap semantics) so the current worst survivor is
    inspectable in O(1) via :attr:`worst_distance`.
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self._heap: list[tuple[float, int]] = []
        self.pushes = 0
        self.rejections = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def worst_distance(self) -> float:
        """Largest distance currently kept; ``inf`` while not full."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    def push(self, distance: float, vector_id: int) -> bool:
        """Offer a candidate; returns True if it was kept."""
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-distance, vector_id))
            self.pushes += 1
            return True
        if distance >= -self._heap[0][0]:
            self.rejections += 1
            return False
        heapq.heapreplace(self._heap, (-distance, vector_id))
        self.pushes += 1
        return True

    def results(self) -> list[Neighbor]:
        """The kept neighbors, sorted ascending by distance."""
        ordered = sorted(((-d, vid) for d, vid in self._heap), key=lambda t: (t[0], t[1]))
        return [Neighbor(vector_id=vid, distance=d) for d, vid in ordered]

    def merge(self, other: "BoundedMaxHeap") -> None:
        """Fold another heap's survivors into this one.

        This is the Faiss parallel-search pattern: each worker fills a
        *local* heap and local heaps are merged lock-free at the end
        (Sec. VII-D).
        """
        for neg_d, vid in other._heap:
            self.push(-neg_d, vid)


class NaiveTopK:
    """PASE-style top-k: heap of size *n*, pop ``k`` at the end (RC#6).

    Every scanned candidate is pushed (``O(log n)`` each, no early
    rejection); :meth:`results` then pops the ``k`` smallest.  The
    extra work relative to :class:`BoundedMaxHeap` is exactly the
    "Min-heap" row of the paper's Table V.
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self._heap: list[tuple[float, int]] = []
        self.pushes = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, distance: float, vector_id: int) -> bool:
        """Push a candidate; PASE never rejects, so always True."""
        heapq.heappush(self._heap, (distance, vector_id))
        self.pushes += 1
        return True

    def results(self) -> list[Neighbor]:
        """Pop the ``k`` smallest candidates, ascending."""
        out: list[Neighbor] = []
        for _ in range(min(self.k, len(self._heap))):
            distance, vid = heapq.heappop(self._heap)
            out.append(Neighbor(vector_id=vid, distance=distance))
        return out


class LockedGlobalHeap:
    """A shared bounded heap guarded by a lock, with contention counters.

    Models PASE's intra-query parallel search, where worker threads
    insert candidates into one *global* heap under a lock (Sec. VII-D).
    The counters (:attr:`lock_acquisitions`) feed the deterministic
    contention model in :mod:`repro.common.parallel`.
    """

    def __init__(self, k: int) -> None:
        self._inner = BoundedMaxHeap(k)
        self._lock = threading.Lock()
        self.lock_acquisitions = 0

    def push(self, distance: float, vector_id: int) -> bool:
        """Thread-safe push; every call takes the global lock."""
        with self._lock:
            self.lock_acquisitions += 1
            return self._inner.push(distance, vector_id)

    def results(self) -> list[Neighbor]:
        """Survivors sorted ascending by distance."""
        with self._lock:
            return self._inner.results()


def exact_topk(distances, k: int) -> list[Neighbor]:
    """Exact top-k over a dense distance row via argpartition.

    Utility used for ground truth and for the specialized engine's
    batch path, where distances for a whole bucket already live in one
    array.
    """
    import numpy as np

    dists = np.asarray(distances)
    n = dists.shape[0]
    k = min(k, n)
    if k == n:
        idx = np.argsort(dists, kind="stable")
    else:
        part = np.argpartition(dists, k)[:k]
        idx = part[np.argsort(dists[part], kind="stable")]
    return [Neighbor(vector_id=int(i), distance=float(dists[i])) for i in idx]
