"""PASE IVF_FLAT: a page-structured inverted-file index.

Layout (following the paper's description of PASE, Sec. II-E/VI-A):

- **meta fork** — one page, one tuple: ``(dim, clusters, distance_type)``.
- **centroid fork** — fixed-size centroid tuples packed into pages:
  ``centroid_id (u32) | bucket_head_blkno (u32) | vector (d * f32)``.
  Because tuples are fixed-size, centroid *i*'s page and offset are
  computable, like PASE's centroid pages.
- **data fork** — per-bucket chains of data pages.  Each data tuple is
  ``heap_blkno (u32) | heap_offset (u16) | pad (2) | vector (d * f32)``;
  each page's 8-byte special space holds the next block in the chain.

Construction trains centroids with PASE's k-means flavour (RC#5) and
assigns base vectors one at a time without SGEMM (RC#1).  Search walks
centroid pages and bucket chains through the buffer manager — paying
the per-tuple toll of RC#2 — and collects candidates into a size-*n*
heap (RC#6) unless ``SET pase.fixed_heap = true``.
"""

from __future__ import annotations

import struct
import time
from typing import Any, Iterator

import numpy as np

from repro.common.distance import pairwise_kernel, rows_kernel
from repro.common.heap import BoundedMaxHeap, NaiveTopK
from repro.common.kmeans import pase_kmeans, sample_training_rows
from repro.common.profiling import NULL_PROFILER
from repro.common.types import BuildStats, IndexSizeInfo
from repro.pase.options import parse_ivf_options
from repro.pgsim.am import IndexAmRoutine, ScanBatch, register_am, topk_batch
from repro.pgsim.paths import DISTANCE_OP_WEIGHT
from repro.pgsim.constants import LINE_POINTER_SIZE, PAGE_HEADER_SIZE
from repro.pgsim.heapam import TID
from repro.pgsim.page import Page, PageFullError

_META = struct.Struct("<III")  # dim, clusters, distance_type
_CENTROID_HEAD = struct.Struct("<II")  # centroid_id, bucket_head_blkno
_DATA_HEAD = struct.Struct("<IHxx")  # heap blkno, heap offset, pad
_NEXT = struct.Struct("<I")  # chain pointer in the special space

#: "no bucket page" sentinel.
_NO_BLOCK = 0xFFFFFFFF

SEC_DISTANCE = "fvec_L2sqr"
SEC_TUPLE_ACCESS = "Tuple Access"
SEC_HEAP = "Min-heap"


@register_am
class PaseIVFFlat(IndexAmRoutine):
    """IVF_FLAT access method (PASE page layout)."""

    amname = "pase_ivfflat"
    aliases = ("ivfflat_fun",)
    amcanfilter = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.opts = parse_ivf_options(self.options)
        self.profiler = NULL_PROFILER
        self.build_stats = BuildStats()
        self.dim: int | None = None
        self._centroids_per_page: int | None = None
        #: ``(query bytes, full centroid order, bucket heads)`` from the
        #: most recent scan — lets ``amrescan_continue`` skip re-ranking
        #: the centroids when the over-fetch loop widens ``k``.
        self._rescan_cache: tuple[bytes, np.ndarray, list[int]] | None = None
        #: Per-centroid count of post-build inserts, consulted by
        #: VACUUM's re-centering heuristic (ivf_recluster_threshold).
        self._bucket_inserts: dict[int, int] = {}

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def build(self) -> None:
        rows = [(tid, values[self.column_index]) for tid, values in self.table.scan()]
        if not rows:
            raise RuntimeError("cannot build an IVF index over an empty table")
        vectors = np.vstack([v for __, v in rows]).astype(np.float32)
        self.dim = int(vectors.shape[1])
        n_clusters = min(self.opts.clusters, vectors.shape[0])

        start = time.perf_counter()
        self.progress.set_phase("sample")
        sample = sample_training_rows(
            vectors, self.opts.sample_ratio, n_clusters, self.opts.seed
        )
        self.progress.set_phase("kmeans")
        result = pase_kmeans(sample, n_clusters, self.opts.kmeans_iterations)
        centroids = result.centroids
        self.build_stats.train_seconds = time.perf_counter() - start

        start = time.perf_counter()
        self.progress.set_phase("assign", tuples_total=len(rows))
        buckets: list[list[tuple[TID, np.ndarray]]] = [[] for _ in range(n_clusters)]
        # PASE's adding phase: one distance row per base vector, no
        # SGEMM (the paper's RC#1).
        for tid, vec in rows:
            diff = centroids - vec
            dists = np.einsum("ij,ij->i", diff, diff)
            buckets[int(np.argmin(dists))].append((tid, vec))
            self.progress.tick()
        self.build_stats.distance_computations += len(rows) * n_clusters

        self.progress.set_phase("flush")
        heads = [self._write_bucket(bucket) for bucket in buckets]
        self._write_centroids(centroids, heads)
        self._write_meta(n_clusters)
        self.build_stats.add_seconds = time.perf_counter() - start
        self.build_stats.vectors_added = len(rows)
        self._rescan_cache = None
        self._bucket_inserts = {}

    def _write_meta(self, n_clusters: int) -> None:
        rel = self.create_fork("meta")
        blkno, frame = self.buffer.new_page(rel)
        try:
            frame.page.insert_item(
                _META.pack(self.dim, n_clusters, int(self.opts.distance_type))
            )
        finally:
            self.buffer.unpin(frame, dirty=True)

    def _write_centroids(self, centroids: np.ndarray, heads: list[int]) -> None:
        rel = self.create_fork("centroid")
        tuple_size = _CENTROID_HEAD.size + centroids.shape[1] * 4
        self._centroids_per_page = max(
            (self.buffer.disk.page_size - PAGE_HEADER_SIZE)
            // (tuple_size + LINE_POINTER_SIZE),
            1,
        )
        frame = None
        blkno = -1
        for i, (centroid, head) in enumerate(zip(centroids, heads)):
            if i % self._centroids_per_page == 0:
                if frame is not None:
                    self.buffer.unpin(frame, dirty=True)
                blkno, frame = self.buffer.new_page(rel)
            item = _CENTROID_HEAD.pack(i, head) + centroid.tobytes()
            frame.page.insert_item(item)
        if frame is not None:
            self.buffer.unpin(frame, dirty=True)

    def _write_bucket(self, bucket: list[tuple[TID, np.ndarray]]) -> int:
        """Write one bucket as a page chain; returns its head block."""
        rel = self.create_fork("data")
        head = _NO_BLOCK
        frame = None
        for tid, vec in bucket:
            item = _DATA_HEAD.pack(tid.blkno, tid.offset) + vec.astype(np.float32).tobytes()
            if frame is not None:
                try:
                    frame.page.insert_item(item)
                    continue
                except PageFullError:
                    self.buffer.unpin(frame, dirty=True)
                    frame = None
            blkno, frame = self.buffer.new_page(rel, special_size=_NEXT.size)
            frame.page.write_special(_NEXT.pack(head))
            head = blkno
            frame.page.insert_item(item)
        if frame is not None:
            self.buffer.unpin(frame, dirty=True)
        return head

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------
    def insert(self, tid: TID, value: Any) -> None:
        if self.dim is None:
            raise RuntimeError("index must be built before single inserts")
        self._rescan_cache = None
        vec = np.ascontiguousarray(value, dtype=np.float32)
        if vec.shape != (self.dim,):
            raise ValueError(f"expected a {self.dim}-dim vector, got shape {vec.shape}")
        best_id, best_dist = -1, float("inf")
        for cent_id, __, centroid in self._iter_centroids():
            diff = centroid - vec
            dist = float(np.dot(diff, diff))
            if dist < best_dist:
                best_id, best_dist = cent_id, dist
        self._bucket_inserts[best_id] = self._bucket_inserts.get(best_id, 0) + 1
        item = _DATA_HEAD.pack(tid.blkno, tid.offset) + vec.tobytes()
        head = self._bucket_head(best_id)
        rel = self.relation_name("data")
        if head != _NO_BLOCK:
            frame = self.buffer.pin(rel, head)
            try:
                frame.page.insert_item(item)
            except PageFullError:
                self.buffer.unpin(frame)
            else:
                self.buffer.unpin(frame, dirty=True)
                return
        blkno, frame = self.buffer.new_page(rel, special_size=_NEXT.size)
        try:
            frame.page.write_special(_NEXT.pack(head))
            frame.page.insert_item(item)
        finally:
            self.buffer.unpin(frame, dirty=True)
        self._set_bucket_head(best_id, blkno)

    # ------------------------------------------------------------------
    # vacuum (ambulkdelete)
    # ------------------------------------------------------------------
    #: Whether VACUUM may re-center centroids from surviving vectors.
    #: True only where the data fork stores raw float32 vectors; the
    #: quantized variants (PQ/SQ8) keep codes, so a recomputed centroid
    #: would drift from the codec's training frame — they compact only.
    _RECENTER_ON_VACUUM = True

    def ambulkdelete(self, dead_tids: set[TID]) -> int:
        """Compact bucket chains, dropping entries for vacuumed tuples.

        Each bucket's page chain is rewritten in place with only the
        surviving entries.  When a list has churned past the
        ``ivf_recluster_threshold`` GUC — dead entries plus post-build
        inserts as a fraction of its current size — its centroid is
        re-centered to the mean of the surviving vectors, PASE's answer
        to cluster drift under streaming ingest.
        """
        if self.dim is None or not dead_tids:
            return 0
        try:
            threshold = float(self.catalog.get_setting("ivf_recluster_threshold"))
        except Exception:
            threshold = float("inf")
        removed_total = 0
        for cent_id, removed, survivors in compact_bucket_chains(self, dead_tids):
            removed_total += removed
            if removed:
                # Per-bucket progress tick (pg_stat_progress_vacuum):
                # observers see entry reclamation advance chain by chain.
                self.vacuum_progress.tick_index_entries(removed)
            if not self._RECENTER_ON_VACUUM or not survivors:
                continue
            inserts = self._bucket_inserts.get(cent_id, 0)
            if (removed + inserts) / len(survivors) <= threshold:
                continue
            mat = np.vstack(
                [
                    np.frombuffer(item, dtype=np.float32, offset=_DATA_HEAD.size)
                    for item in survivors
                ]
            )
            self._recenter(cent_id, mat.mean(axis=0).astype(np.float32))
            self._bucket_inserts[cent_id] = 0
        if removed_total:
            self._rescan_cache = None
        return removed_total

    def _recenter(self, centroid_id: int, centroid: np.ndarray) -> None:
        """Overwrite one centroid vector in place (chain head unchanged)."""
        blkno, off = self._centroid_location(centroid_id)
        frame = self.buffer.pin(self.relation_name("centroid"), blkno)
        try:
            view = frame.page.get_item_view(off)
            view[_CENTROID_HEAD.size :] = centroid.tobytes()
        finally:
            self.buffer.unpin(frame, dirty=True)

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _check_query(self, query: np.ndarray) -> np.ndarray:
        if self.dim is None:
            raise RuntimeError("index has not been built")
        query = np.ascontiguousarray(query, dtype=np.float32)
        if query.shape != (self.dim,):
            raise ValueError(f"query must be {self.dim}-dim, got shape {query.shape}")
        return query

    def _rank_centroids(
        self, query: np.ndarray, kernel, reuse: bool = False
    ) -> tuple[np.ndarray, list[int]]:
        """Rank every centroid by distance to ``query``.

        Returns ``(full sorted centroid order, bucket heads)``.  With
        ``reuse`` (the over-fetch rescan path) a cached ranking from the
        initial scan of the same query is returned without recomputing
        the centroid distances; plain scans always recompute, keeping
        their measured work identical to before.
        """
        key = query.tobytes()
        if reuse and self._rescan_cache is not None and self._rescan_cache[0] == key:
            return self._rescan_cache[1], self._rescan_cache[2]
        prof = self.profiler
        cent_dists: list[float] = []
        heads: list[int] = []
        for __, head, centroid in self._iter_centroids():
            with prof.section(SEC_DISTANCE):
                cent_dists.append(kernel(query, centroid))
            heads.append(head)
        order = np.argsort(np.asarray(cent_dists), kind="stable")
        self._rescan_cache = (key, order, heads)
        return order, heads

    def scan(self, query: np.ndarray, k: int) -> Iterator[tuple[TID, float]]:
        query = self._check_query(query)
        kernel = pairwise_kernel(self.opts.distance_type)
        nprobe = int(self.catalog.get_setting("pase.nprobe"))
        order, heads = self._rank_centroids(query, kernel)
        return self._scan_buckets(query, k, order[: max(nprobe, 1)], heads, kernel)

    def amrescan_continue(self, query: np.ndarray, k: int) -> Iterator[tuple[TID, float]]:
        """Over-fetch continuation: reuse the scan's centroid ranking."""
        query = self._check_query(query)
        kernel = pairwise_kernel(self.opts.distance_type)
        nprobe = int(self.catalog.get_setting("pase.nprobe"))
        order, heads = self._rank_centroids(query, kernel, reuse=True)
        return self._scan_buckets(query, k, order[: max(nprobe, 1)], heads, kernel)

    def _scan_buckets(
        self,
        query: np.ndarray,
        k: int,
        order: np.ndarray,
        heads: list[int],
        kernel,
    ) -> Iterator[tuple[TID, float]]:
        """Walk the probed buckets, yielding the k nearest ``(tid, dist)``."""
        prof = self.profiler
        fixed_heap = self.catalog.get_bool("pase.fixed_heap")
        candidates = 0
        if fixed_heap:
            # RC#6 neutralized: k-sized heap, candidates rejected with a
            # single comparison against the current worst survivor.
            heap = BoundedMaxHeap(k)
            worst = heap.worst_distance
            for bucket in order.tolist():
                for tid, vec in self._iter_bucket(heads[bucket]):
                    candidates += 1
                    with prof.section(SEC_DISTANCE):
                        dist = kernel(query, vec)
                    with prof.section(SEC_HEAP):
                        if dist < worst:
                            heap.push(dist, _tid_key(tid))
                            worst = heap.worst_distance
        else:
            # PASE's design: every candidate enters a size-n heap.
            heap = NaiveTopK(k)
            for bucket in order.tolist():
                for tid, vec in self._iter_bucket(heads[bucket]):
                    candidates += 1
                    with prof.section(SEC_DISTANCE):
                        dist = kernel(query, vec)
                    with prof.section(SEC_HEAP):
                        heap.push(dist, _tid_key(tid))
        self.scan_stats.scans += 1
        self.scan_stats.candidates += candidates
        with prof.section(SEC_HEAP):
            results = heap.results()
        for neighbor in results:
            yield _key_tid(neighbor.vector_id), neighbor.distance

    def get_batch(self, query: np.ndarray, k: int) -> ScanBatch:
        """Batched scan: whole buckets scored with one kernel call each.

        Same candidates and distances as :meth:`scan`, but per-tuple
        Python work (kernel call, profiler section, heap push — the
        paper's RC#3/RC#6 toll) collapses into per-bucket array ops.
        """
        query = self._check_query(query)
        kernel = pairwise_kernel(self.opts.distance_type)
        nprobe = int(self.catalog.get_setting("pase.nprobe"))
        order, heads = self._rank_centroids(query, kernel)
        return self._batch_buckets(query, k, order[: max(nprobe, 1)], heads)

    def amrescan_continue_batch(self, query: np.ndarray, k: int) -> ScanBatch:
        """Batched over-fetch continuation (cached centroid ranking)."""
        query = self._check_query(query)
        kernel = pairwise_kernel(self.opts.distance_type)
        nprobe = int(self.catalog.get_setting("pase.nprobe"))
        order, heads = self._rank_centroids(query, kernel, reuse=True)
        return self._batch_buckets(query, k, order[: max(nprobe, 1)], heads)

    def _batch_buckets(
        self, query: np.ndarray, k: int, order: np.ndarray, heads: list[int]
    ) -> ScanBatch:
        """Score the probed buckets bucket-at-a-time into a ScanBatch."""
        prof = self.profiler
        rows = rows_kernel(self.opts.distance_type)
        key_parts: list[np.ndarray] = []
        dist_parts: list[np.ndarray] = []
        self.scan_stats.scans += 1
        for bucket in order.tolist():
            with prof.section(SEC_TUPLE_ACCESS):
                keys, vectors = self._gather_bucket(heads[bucket])
            if keys.shape[0] == 0:
                continue
            self.scan_stats.candidates += int(keys.shape[0])
            with prof.section(SEC_DISTANCE):
                dist_parts.append(rows(query, vectors))
            key_parts.append(keys)
        with prof.section(SEC_HEAP):
            if not key_parts:
                return ScanBatch.empty()
            return topk_batch(np.concatenate(key_parts), np.concatenate(dist_parts), k)

    # ------------------------------------------------------------------
    # in-filter search (amsearch_filtered)
    # ------------------------------------------------------------------
    def amsearch_filtered(
        self, query: np.ndarray, k: int, mask_fn: Any
    ) -> Iterator[tuple[TID, float]]:
        """In-filter scan: each probed bucket's TIDs go through the
        predicate mask before any distance work, so rejected candidates
        never reach a kernel call or the heap."""
        query = self._check_query(query)
        kernel = pairwise_kernel(self.opts.distance_type)
        order, heads = self._rank_centroids(query, kernel)
        prof = self.profiler

        def score(vec: np.ndarray) -> float:
            with prof.section(SEC_DISTANCE):
                return kernel(query, vec)

        return iter(
            ivf_filtered_scan(self, k, mask_fn, order.tolist(), heads, self._iter_bucket, score)
        )

    def amsearch_filtered_batch(self, query: np.ndarray, k: int, mask_fn: Any) -> ScanBatch:
        """Batched in-filter: a per-bucket boolean mask ahead of one
        row-kernel call over the survivors, widening the probe set
        geometrically while fewer than k candidates pass."""
        query = self._check_query(query)
        kernel = pairwise_kernel(self.opts.distance_type)
        rows = rows_kernel(self.opts.distance_type)
        order, heads = self._rank_centroids(query, kernel)
        order_list = order.tolist()
        nprobe = max(int(self.catalog.get_setting("pase.nprobe")), 1)
        prof = self.profiler
        key_parts: list[np.ndarray] = []
        dist_parts: list[np.ndarray] = []
        examined = 0
        matched = 0
        probed = 0
        target = min(nprobe, len(order_list))
        while True:
            for bucket in order_list[probed:target]:
                with prof.section(SEC_TUPLE_ACCESS):
                    keys, vectors = self._gather_bucket(heads[bucket])
                if keys.shape[0] == 0:
                    continue
                examined += int(keys.shape[0])
                tids = [_key_tid(int(key)) for key in keys.tolist()]
                mask = np.asarray(list(mask_fn(tids)), dtype=bool)
                keep = int(mask.sum())
                if not keep:
                    continue
                matched += keep
                with prof.section(SEC_DISTANCE):
                    dist_parts.append(rows(query, vectors[mask]))
                key_parts.append(keys[mask])
            probed = target
            if matched >= k or probed >= len(order_list):
                break
            target = min(len(order_list), target * 2)
        self.scan_stats.scans += 1
        self.scan_stats.candidates += matched
        self.last_filtered_examined = examined
        with prof.section(SEC_HEAP):
            if not key_parts:
                return ScanBatch.empty()
            return topk_batch(np.concatenate(key_parts), np.concatenate(dist_parts), k)

    def amestimate_candidates(self, ntuples: float, fetch_k: int) -> float:
        """Candidates the in-filter mask must judge: the probed share
        of the indexed tuples (``nprobe/clusters`` of n)."""
        n = max(float(ntuples), 1.0)
        clusters = max(1.0, min(float(self.opts.clusters), n))
        nprobe = float(min(max(int(self.catalog.get_setting("pase.nprobe")), 1), int(clusters)))
        return n * (nprobe / clusters)

    # ------------------------------------------------------------------
    # planner cost estimate
    # ------------------------------------------------------------------
    #: Cost weight of one candidate distance evaluation, in
    #: cpu_operator_cost units (subclasses tune for their codecs).
    _COST_DISTANCE_WEIGHT = DISTANCE_OP_WEIGHT

    def amcostestimate(self, ntuples: float, fetch_k: int, cost: Any) -> tuple[float, float]:
        """IVF scan cost: rank every centroid, score ``nprobe/clusters``
        of the indexed tuples.  ``fetch_k`` barely matters — the heap is
        k-bounded but every probed candidate still gets a distance."""
        n = max(float(ntuples), 1.0)
        clusters = max(1.0, min(float(self.opts.clusters), n))
        nprobe = float(min(max(int(self.catalog.get_setting("pase.nprobe")), 1), int(clusters)))
        candidates = n * (nprobe / clusters)
        total = clusters * DISTANCE_OP_WEIGHT * cost.cpu_operator_cost
        total += candidates * (
            cost.cpu_index_tuple_cost + self._COST_DISTANCE_WEIGHT * cost.cpu_operator_cost
        )
        return total, total

    # ------------------------------------------------------------------
    # page iteration
    # ------------------------------------------------------------------
    def _iter_centroids(self) -> Iterator[tuple[int, int, np.ndarray]]:
        """Yield ``(centroid_id, bucket_head, vector)`` from centroid pages."""
        rel = self.relation_name("centroid")
        prof = self.profiler
        n_blocks = self.buffer.disk.n_blocks(rel)
        for blkno in range(n_blocks):
            frame = self.buffer.pin(rel, blkno)
            try:
                page = frame.page
                for off in range(1, page.item_count + 1):
                    with prof.section(SEC_TUPLE_ACCESS):
                        view = page.get_item_view(off)
                        cent_id, head = _CENTROID_HEAD.unpack_from(view, 0)
                        vec = np.frombuffer(view, dtype=np.float32, offset=_CENTROID_HEAD.size)
                    yield cent_id, head, vec
            finally:
                self.buffer.unpin(frame)

    def _iter_bucket(self, head: int) -> Iterator[tuple[TID, np.ndarray]]:
        """Walk one bucket's page chain, yielding ``(heap tid, vector)``."""
        rel = self.relation_name("data")
        prof = self.profiler
        blkno = head
        while blkno != _NO_BLOCK:
            frame = self.buffer.pin(rel, blkno)
            try:
                page = frame.page
                for off in range(1, page.item_count + 1):
                    with prof.section(SEC_TUPLE_ACCESS):
                        view = page.get_item_view(off)
                        heap_blk, heap_off = _DATA_HEAD.unpack_from(view, 0)
                        vec = np.frombuffer(view, dtype=np.float32, offset=_DATA_HEAD.size)
                    yield TID(heap_blk, heap_off), vec
                (blkno,) = _NEXT.unpack(page.read_special())
            finally:
                self.buffer.unpin(frame)

    def _gather_bucket(self, head: int) -> tuple[np.ndarray, np.ndarray]:
        """Collect one bucket as ``(packed TID keys, vector matrix)``.

        Data pages are append-only with fixed-size tuples, so each
        page's items sit contiguously between ``upper`` and the special
        space (newest first) and the whole page decodes with a handful
        of array ops — no per-tuple line-pointer walk.
        """
        rel = self.relation_name("data")
        item_size = _DATA_HEAD.size + self.dim * 4
        key_parts: list[np.ndarray] = []
        vec_parts: list[np.ndarray] = []
        blkno = head
        while blkno != _NO_BLOCK:
            frame = self.buffer.pin(rel, blkno)
            try:
                page = frame.page
                n = page.item_count
                if n:
                    keys, vectors = _decode_data_page(page, n, item_size)
                    key_parts.append(keys)
                    vec_parts.append(vectors)
                (blkno,) = _NEXT.unpack(page.read_special())
            finally:
                self.buffer.unpin(frame)
        if not key_parts:
            return np.empty(0, dtype=np.int64), np.empty((0, self.dim), dtype=np.float32)
        return np.concatenate(key_parts), np.vstack(vec_parts)

    # ------------------------------------------------------------------
    # centroid tuple updates
    # ------------------------------------------------------------------
    def _centroid_location(self, centroid_id: int) -> tuple[int, int]:
        assert self._centroids_per_page is not None
        return (
            centroid_id // self._centroids_per_page,
            centroid_id % self._centroids_per_page + 1,
        )

    def _bucket_head(self, centroid_id: int) -> int:
        blkno, off = self._centroid_location(centroid_id)
        with self.buffer.page(self.relation_name("centroid"), blkno) as page:
            return _CENTROID_HEAD.unpack_from(page.get_item_view(off), 0)[1]

    def _set_bucket_head(self, centroid_id: int, head: int) -> None:
        blkno, off = self._centroid_location(centroid_id)
        frame = self.buffer.pin(self.relation_name("centroid"), blkno)
        try:
            view = frame.page.get_item_view(off)
            struct.pack_into("<I", view, 4, head)
        finally:
            self.buffer.unpin(frame, dirty=True)

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    def relations(self) -> list[str]:
        """Page-file names owned by this index (for DROP cleanup)."""
        return [self.relation_name(f) for f in ("meta", "centroid", "data")]

    def size_info(self) -> IndexSizeInfo:
        page_size = self.buffer.disk.page_size
        detail: dict[str, int] = {}
        pages = 0
        used = 0
        for fork in ("meta", "centroid", "data"):
            rel = self.relation_name(fork)
            if not self.buffer.disk.relation_exists(rel):
                continue
            n = self.buffer.disk.n_blocks(rel)
            pages += n
            detail[f"{fork}_pages"] = n
            used += self._live_bytes(rel)
        return IndexSizeInfo(
            allocated_bytes=pages * page_size,
            used_bytes=used,
            page_count=pages,
            detail=detail,
        )

    def _live_bytes(self, rel: str) -> int:
        total = 0
        for blkno in range(self.buffer.disk.n_blocks(rel)):
            with self.buffer.page(rel, blkno) as page:
                for off in page.live_items():
                    total += len(page.get_item_view(off))
        return total


def _decode_data_page(page, n: int, item_size: int) -> tuple[np.ndarray, np.ndarray]:
    """Decode a whole data page into ``(packed TID keys, vector matrix)``.

    Fast path: the tuple area ``[upper, special)`` holds exactly ``n``
    fixed-size records, so one reshape splits header words from vector
    payloads.  Falls back to the line-pointer walk if the layout ever
    stops being uniform (it never is for append-only data forks).
    """
    upper = page.upper
    if page.special - upper == n * item_size:
        mat = np.frombuffer(
            page.buf, dtype=np.uint8, count=n * item_size, offset=upper
        ).reshape(n, item_size)
        words = mat.view("<u4")
        keys = (words[:, 0].astype(np.int64) << 16) | (words[:, 1] & 0xFFFF)
        return keys, mat.view("<f4")[:, 2:]
    keys = np.empty(n, dtype=np.int64)
    vectors: list[np.ndarray] = []
    for off in range(1, n + 1):
        view = page.get_item_view(off)
        heap_blk, heap_off = _DATA_HEAD.unpack_from(view, 0)
        keys[off - 1] = (heap_blk << 16) | heap_off
        vectors.append(np.frombuffer(view, dtype=np.float32, offset=_DATA_HEAD.size))
    return keys, np.vstack(vectors)


def compact_bucket_chains(am, dead_tids: set[TID]) -> Iterator[tuple[int, int, list[bytes]]]:
    """Drop dead entries from every bucket chain of an IVF-family index.

    Shared by the PASE IVF variants (FLAT, PQ, SQ8): all three use the
    same centroid-tuple head (``centroid_id (u32) | head_blkno (u32)``)
    and data-page chain layout (``heap_blkno (u32) | heap_off (u16) |
    pad`` item prefix, next-block pointer in an 8-byte special space),
    so compaction only needs the raw item bytes — it never decodes the
    per-AM payload (float32 vector, PQ code, SQ8 code).

    For each bucket, yields ``(centroid_id, removed, survivor_items)``
    where survivor items are byte copies of the entries kept.  Chains
    with removals are rewritten in place: each page is re-initialized
    (keeping its next pointer) and refilled front-to-back, so surviving
    items stay contiguous — preserving ``_gather_bucket``'s fast path —
    and trailing chain pages are simply left empty.  Index forks are
    not WAL-logged (recovery rebuilds them from the DDL log), so the
    wholesale page rewrite needs no log record.
    """
    rel = am.relation_name("data")
    if not am.buffer.disk.relation_exists(rel):
        return
    buckets = [(cent_id, head) for cent_id, head, __ in am._iter_centroids()]
    for cent_id, head in buckets:
        survivors: list[bytes] = []
        removed = 0
        blkno = head
        while blkno != _NO_BLOCK:
            frame = am.buffer.pin(rel, blkno)
            try:
                page = frame.page
                for off in range(1, page.item_count + 1):
                    view = page.get_item_view(off)
                    heap_blk, heap_off = _DATA_HEAD.unpack_from(view, 0)
                    if TID(heap_blk, heap_off) in dead_tids:
                        removed += 1
                    else:
                        # Copy: the view dangles once the frame is
                        # unpinned (the buffer may recycle it).
                        survivors.append(bytes(view))
                (blkno,) = _NEXT.unpack(page.read_special())
            finally:
                am.buffer.unpin(frame)
        if removed:
            _refill_chain(am, rel, head, survivors)
        yield cent_id, removed, survivors


def _refill_chain(am, rel: str, head: int, survivors: list[bytes]) -> None:
    """Rewrite a bucket chain's pages in place with the surviving items."""
    pending = iter(survivors)
    item = next(pending, None)
    blkno = head
    while blkno != _NO_BLOCK:
        frame = am.buffer.pin(rel, blkno)
        try:
            page = frame.page
            (nxt,) = _NEXT.unpack(page.read_special())
            fresh = Page.init(page.page_size, special_size=_NEXT.size)
            page.buf[:] = fresh.buf
            page.write_special(_NEXT.pack(nxt))
            while item is not None:
                try:
                    page.insert_item(item)
                except PageFullError:
                    break
                item = next(pending, None)
            blkno = nxt
        finally:
            am.buffer.unpin(frame, dirty=True)
    assert item is None, "surviving items exceeded original chain capacity"


def ivf_filtered_scan(
    am,
    k: int,
    mask_fn,
    order: list[int],
    heads: list[int],
    iter_candidates,
    score_one,
) -> list[tuple[TID, float]]:
    """Shared in-filter scan for the IVF family (FLAT, PQ, SQ8, pgvector).

    Walks bucket chains in the caller's *full* centroid ranking,
    applies ``mask_fn`` to each probed bucket's candidate TIDs before
    any distance work, and pushes only the survivors into a k-bounded
    heap.  When fewer than k candidates pass the mask, the probe set
    widens geometrically over the remaining centroid ranking until k
    match or every list has been scanned.

    ``iter_candidates(head)`` yields ``(tid, payload)`` for one bucket
    chain; ``score_one(payload)`` turns a payload into a distance (or
    None for entries lagging a completed heap VACUUM — the pgvector
    layout).  Sets ``am.last_filtered_examined`` to the number of
    mask-judged candidates and returns the ordered ``(tid, distance)``
    list.
    """
    prof = am.profiler
    nprobe = max(int(am.catalog.get_setting("pase.nprobe")), 1)
    heap = BoundedMaxHeap(k)
    examined = 0
    scored = 0
    matched = 0
    probed = 0
    target = min(nprobe, len(order))
    while True:
        for bucket in order[probed:target]:
            entries = list(iter_candidates(heads[bucket]))
            if not entries:
                continue
            examined += len(entries)
            mask = mask_fn([tid for tid, __ in entries])
            for (tid, payload), ok in zip(entries, mask):
                if not ok:
                    continue
                matched += 1
                dist = score_one(payload)
                if dist is None:
                    continue
                scored += 1
                with prof.section(SEC_HEAP):
                    heap.push(dist, _tid_key(tid))
        probed = target
        if matched >= k or probed >= len(order):
            break
        target = min(len(order), target * 2)
    am.scan_stats.scans += 1
    am.scan_stats.candidates += scored
    am.last_filtered_examined = examined
    return [(_key_tid(nb.vector_id), nb.distance) for nb in heap.results()]


def _tid_key(tid: TID) -> int:
    """Pack a TID into one int for heap entries."""
    return (tid.blkno << 16) | tid.offset


def _key_tid(key: int) -> TID:
    return TID(key >> 16, key & 0xFFFF)
