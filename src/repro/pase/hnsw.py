"""PASE HNSW: page-structured graph store + access method.

The graph algorithm is shared with the specialized engine
(:mod:`repro.common.graph`); what this module supplies is PASE's
substrate, with the two properties the paper's Secs. V-C and VI-C
trace root causes to:

- **RC#2** — every vector fetch, neighbor-list traversal and
  visited-check goes through the buffer manager and page decoding.
  ``vectors()`` gathers one tuple at a time; ``neighbors()`` walks
  neighbor pages (``pasepfirst``); the visited set resolves a
  node to its ``HNSWGlobalId`` before each membership test
  (``HVTGet``).
- **RC#4** — every adjacency list starts on a **fresh page**, and each
  neighbor entry is a 24-byte ``HNSWNeighborTuple``::

      PaseTuple pointer (8 B) | nblkid (u32) | dblkid (u32)
      | doffset (u16) | alignment padding (6 B)       = 24 bytes

  versus Faiss's 4-byte ids — the paper's exact Sec. VI-C2 numbers.

Vectors live in packed data-fork tuples:
``node_id (u32) | heap_blkno (u32) | heap_offset (u16) | level (u16) |
vector``.
"""

from __future__ import annotations

import math
import struct
import time
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

import numpy as np

from repro.common import graph
from repro.common.profiling import NULL_PROFILER
from repro.common.rng import make_rng
from repro.common.types import BuildStats, IndexSizeInfo
from repro.pase.options import parse_hnsw_options
from repro.pgsim.am import IndexAmRoutine, ScanBatch, register_am
from repro.pgsim.heapam import TID
from repro.pgsim.paths import DISTANCE_OP_WEIGHT
from repro.pgsim.page import Page, PageFullError

#: The 24-byte HNSWNeighborTuple (Sec. VI-C2).  The 8-byte PaseTuple
#: pointer field carries the neighbor's node id — the role the char
#: pointer ("virtual link") plays in PASE.
_NEIGHBOR = struct.Struct("<QIIH6x")
assert _NEIGHBOR.size == 24

_DATA_HEAD = struct.Struct("<IIHH")  # node id, heap blkno, heap offset, level
_NEXT = struct.Struct("<I")
_NO_BLOCK = 0xFFFFFFFF


@dataclass(slots=True)
class _NodeMeta:
    """In-memory handle of one graph node (PASE's virtual-link role)."""

    data_blkno: int
    data_offset: int
    level: int
    neighbor_heads: list[int]  # head block per level


class _TupleVisited:
    """PASE-style visited set (the paper's ``HVTGet``).

    Membership is tested against the node's composed ``HNSWGlobalId``
    — (neighbor block, data block, data offset) — which must be looked
    up and assembled per check, instead of indexing a flat array.
    """

    __slots__ = ("_store", "_seen")

    def __init__(self, store: "PageGraphStore") -> None:
        self._store = store
        self._seen: set[tuple[int, int, int]] = set()

    def _global_id(self, node: int) -> tuple[int, int, int]:
        meta = self._store._nodes[node]
        nblkid = meta.neighbor_heads[0] if meta.neighbor_heads else _NO_BLOCK
        return (nblkid, meta.data_blkno, meta.data_offset)

    def add(self, node: int) -> None:
        self._seen.add(self._global_id(node))

    def __contains__(self, node: int) -> bool:
        return self._global_id(node) in self._seen


class PageGraphStore:
    """Page-backed :class:`repro.common.graph.GraphStore`."""

    def __init__(self, am: "PaseHNSW") -> None:
        self.am = am
        self.buffer = am.buffer
        self.profiler = am.profiler
        self.counters = graph.GraphCounters()
        self.entry_point: int | None = None
        self.max_level = -1
        self._nodes: list[_NodeMeta] = []
        #: Node ids unlinked by VACUUM; their data tuples are gone, so
        #: readers (and later vacuums) must skip them.
        self.removed: set[int] = set()
        self.data_rel = am.create_fork("data")
        self.neighbor_rel = am.create_fork("neighbors")
        self._data_insert_block: int | None = None

    # ------------------------------------------------------------------
    # GraphStore protocol
    # ------------------------------------------------------------------
    def vector(self, node: int) -> np.ndarray:
        meta = self._nodes[node]
        with self.buffer.page(self.data_rel, meta.data_blkno) as page:
            view = page.get_item_view(meta.data_offset)
            return np.frombuffer(view, dtype=np.float32, offset=_DATA_HEAD.size).copy()

    def vectors(self, nodes: Sequence[int]) -> np.ndarray:
        # One buffer-manager round trip per vector: PASE cannot gather
        # with a single pointer dereference the way Faiss does (RC#2).
        out = np.empty((len(nodes), self.am.dim), dtype=np.float32)
        buffer = self.buffer
        rel = self.data_rel
        for i, node in enumerate(nodes):
            meta = self._nodes[node]
            frame = buffer.pin(rel, meta.data_blkno)
            try:
                view = frame.page.get_item_view(meta.data_offset)
                out[i] = np.frombuffer(view, dtype=np.float32, offset=_DATA_HEAD.size)
            finally:
                buffer.unpin(frame)
        return out

    def neighbors(self, node: int, level: int) -> list[int]:
        meta = self._nodes[node]
        if level >= len(meta.neighbor_heads):
            return []
        ids: list[int] = []
        blkno = meta.neighbor_heads[level]
        while blkno != _NO_BLOCK:
            frame = self.buffer.pin(self.neighbor_rel, blkno)
            try:
                page = frame.page
                for off in range(1, page.item_count + 1):
                    view = page.get_item_view(off)
                    node_id, __, __, __ = _NEIGHBOR.unpack_from(view, 0)
                    ids.append(node_id)
                (blkno,) = _NEXT.unpack(page.read_special())
            finally:
                self.buffer.unpin(frame)
        return ids

    def set_neighbors(self, node: int, level: int, ids: Sequence[int]) -> None:
        meta = self._nodes[node]
        if level >= len(meta.neighbor_heads):
            raise IndexError(f"node {node} has no level {level}")
        head = meta.neighbor_heads[level]
        # The head page is dedicated to this adjacency list (fresh page
        # per list, RC#4), so rewriting in place is safe.
        blkno = head
        remaining = [self._neighbor_tuple(nid) for nid in ids]
        while True:
            frame = self.buffer.pin(self.neighbor_rel, blkno)
            try:
                (next_blk,) = _NEXT.unpack(frame.page.read_special())
                _reset_page(frame.page, special=_NEXT.pack(next_blk))
                while remaining:
                    try:
                        frame.page.insert_item(remaining[0])
                    except PageFullError:
                        break
                    remaining.pop(0)
            finally:
                self.buffer.unpin(frame, dirty=True)
            if not remaining:
                break
            if next_blk == _NO_BLOCK:
                next_blk = self._new_neighbor_page()
                self._link_next(blkno, next_blk)
            blkno = next_blk

    def add_node(self, vector: np.ndarray, level: int) -> int:
        node_id = len(self._nodes)
        data_blkno, data_offset = self._insert_data_tuple(node_id, level, vector)
        # RC#4: one fresh page per adjacency list, at every level.
        heads = [self._new_neighbor_page() for _ in range(level + 1)]
        self._nodes.append(_NodeMeta(data_blkno, data_offset, level, heads))
        return node_id

    def node_count(self) -> int:
        return len(self._nodes)

    def make_visited(self) -> _TupleVisited:
        return _TupleVisited(self)

    # ------------------------------------------------------------------
    # page plumbing
    # ------------------------------------------------------------------
    def _neighbor_tuple(self, node_id: int) -> bytes:
        meta = self._nodes[node_id]
        nblkid = meta.neighbor_heads[0] if meta.neighbor_heads else _NO_BLOCK
        return _NEIGHBOR.pack(node_id, nblkid, meta.data_blkno, meta.data_offset)

    def _new_neighbor_page(self) -> int:
        blkno, frame = self.buffer.new_page(self.neighbor_rel, special_size=_NEXT.size)
        try:
            frame.page.write_special(_NEXT.pack(_NO_BLOCK))
        finally:
            self.buffer.unpin(frame, dirty=True)
        return blkno

    def _link_next(self, blkno: int, next_blk: int) -> None:
        frame = self.buffer.pin(self.neighbor_rel, blkno)
        try:
            frame.page.write_special(_NEXT.pack(next_blk))
        finally:
            self.buffer.unpin(frame, dirty=True)

    def _insert_data_tuple(
        self, node_id: int, level: int, vector: np.ndarray
    ) -> tuple[int, int]:
        item = (
            _DATA_HEAD.pack(node_id, 0, 0, level)
            + np.ascontiguousarray(vector, dtype=np.float32).tobytes()
        )
        if self._data_insert_block is not None:
            frame = self.buffer.pin(self.data_rel, self._data_insert_block)
            try:
                offset = frame.page.insert_item(item)
            except PageFullError:
                self.buffer.unpin(frame)
            else:
                self.buffer.unpin(frame, dirty=True)
                return self._data_insert_block, offset
        blkno, frame = self.buffer.new_page(self.data_rel)
        try:
            offset = frame.page.insert_item(item)
        finally:
            self.buffer.unpin(frame, dirty=True)
        self._data_insert_block = blkno
        return blkno, offset

    def set_heap_tid(self, node: int, tid: TID) -> None:
        """Stamp the owning heap tuple's TID into a node's data tuple."""
        meta = self._nodes[node]
        frame = self.buffer.pin(self.data_rel, meta.data_blkno)
        try:
            view = frame.page.get_item_view(meta.data_offset)
            struct.pack_into("<IH", view, 4, tid.blkno, tid.offset)
        finally:
            self.buffer.unpin(frame, dirty=True)

    def heap_tid(self, node: int) -> TID:
        """Read back the heap TID stored in a node's data tuple."""
        meta = self._nodes[node]
        with self.buffer.page(self.data_rel, meta.data_blkno) as page:
            view = page.get_item_view(meta.data_offset)
            __, heap_blk, heap_off, __ = _DATA_HEAD.unpack_from(view, 0)
            return TID(heap_blk, heap_off)

    def heap_tids(self, nodes: Sequence[int]) -> list[TID]:
        """Batched :meth:`heap_tid`: one buffer pin per data block."""
        out: list[TID | None] = [None] * len(nodes)
        by_block: dict[int, list[int]] = {}
        for i, node in enumerate(nodes):
            by_block.setdefault(self._nodes[node].data_blkno, []).append(i)
        for blkno, positions in by_block.items():
            with self.buffer.page(self.data_rel, blkno) as page:
                for i in positions:
                    view = page.get_item_view(self._nodes[nodes[i]].data_offset)
                    __, heap_blk, heap_off, __ = _DATA_HEAD.unpack_from(view, 0)
                    out[i] = TID(heap_blk, heap_off)
        return out  # type: ignore[return-value]


def _reset_page(page: Page, special: bytes) -> None:
    """Re-format a page in place, preserving its special-space size."""
    fresh = Page.init(page.page_size, special_size=len(special))
    page.buf[:] = fresh.buf
    page.write_special(special)


@register_am
class PaseHNSW(IndexAmRoutine):
    """HNSW access method (PASE page layout)."""

    amname = "pase_hnsw"
    aliases = ("hnsw_fun",)
    amcanfilter = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.opts = parse_hnsw_options(self.options)
        self.profiler = NULL_PROFILER
        self.build_stats = BuildStats()
        self.params = graph.HNSWParams(bnn=self.opts.bnn, efb=self.opts.efb)
        self.dim: int | None = None
        self.store: PageGraphStore | None = None
        self._rng = make_rng(self.opts.seed)

    # ------------------------------------------------------------------
    # build / insert
    # ------------------------------------------------------------------
    def build(self) -> None:
        self.store = PageGraphStore(self)
        start = time.perf_counter()
        count = 0
        # HNSW builds incrementally: each tuple is inserted and linked
        # in one pass, so "insert" covers the whole loop and "link" is
        # the (cheap) final state, mirroring pg_stat_progress phases.
        self.progress.set_phase("insert")
        for tid, values in self.table.scan():
            vec = np.ascontiguousarray(values[self.column_index], dtype=np.float32)
            if self.dim is None:
                self.dim = int(vec.shape[0])
            node = graph.insert(self.store, self.params, vec, self._rng)
            self.store.set_heap_tid(node, tid)
            count += 1
            self.progress.tick()
        self.progress.set_phase("link")
        self.build_stats.add_seconds = time.perf_counter() - start
        self.build_stats.vectors_added = count
        self.build_stats.distance_computations = self.store.counters.distance_computations

    def insert(self, tid: TID, value: Any) -> None:
        if self.store is None:
            self.store = PageGraphStore(self)
        vec = np.ascontiguousarray(value, dtype=np.float32)
        if self.dim is None:
            self.dim = int(vec.shape[0])
        node = graph.insert(self.store, self.params, vec, self._rng)
        self.store.set_heap_tid(node, tid)

    # ------------------------------------------------------------------
    # vacuum (ambulkdelete)
    # ------------------------------------------------------------------
    def ambulkdelete(self, dead_tids: set[TID]) -> int:
        """Unlink graph nodes whose heap tuples were vacuumed.

        Survivor neighbor lists are repaired by bridging through the
        dead nodes' own neighbors (the shared
        :func:`repro.common.graph.repair_after_delete`), then the dead
        nodes' data tuples are deleted so their bytes stop counting as
        used and their vectors stop costing distance computations.
        """
        store = self.store
        if store is None or not dead_tids:
            return 0
        candidates = [n for n in range(store.node_count()) if n not in store.removed]
        tids = store.heap_tids(candidates)
        dead = {n for n, tid in zip(candidates, tids) if tid in dead_tids}
        if not dead:
            return 0
        levels = [meta.level for meta in store._nodes]
        # Previously removed nodes join the dead set so the repair
        # never picks one as a bridge or replacement entry point.
        graph.repair_after_delete(store, self.params, dead | store.removed, levels)
        for node in dead:
            meta = store._nodes[node]
            frame = self.buffer.pin(store.data_rel, meta.data_blkno)
            try:
                frame.page.delete_item(meta.data_offset)
            finally:
                self.buffer.unpin(frame, dirty=True)
        store.removed |= dead
        self.vacuum_progress.tick_index_entries(len(dead))
        return len(dead)

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def scan(self, query: np.ndarray, k: int) -> Iterator[tuple[TID, float]]:
        if self.store is None or self.store.node_count() == 0:
            return
        efs = int(self.catalog.get_setting("pase.efs"))
        query = np.ascontiguousarray(query, dtype=np.float32)
        # Refresh the store's profiler in case the harness replaced ours.
        self.store.profiler = self.profiler
        dist0 = self.store.counters.distance_computations
        neighbors = graph.search(self.store, self.params, query, k, efs=efs)
        self.scan_stats.scans += 1
        self.scan_stats.candidates += self.store.counters.distance_computations - dist0
        for neighbor in neighbors:
            yield self.store.heap_tid(neighbor.vector_id), neighbor.distance

    def get_batch(self, query: np.ndarray, k: int) -> ScanBatch:
        """Batched scan: graph search once, heap TIDs resolved per block.

        The traversal itself is identical to :meth:`scan` (same graph
        walk, same float results); what batching removes is the one
        buffer pin per result that ``heap_tid`` costs on the tuple path.
        """
        if self.store is None or self.store.node_count() == 0:
            return ScanBatch.empty()
        efs = int(self.catalog.get_setting("pase.efs"))
        query = np.ascontiguousarray(query, dtype=np.float32)
        self.store.profiler = self.profiler
        dist0 = self.store.counters.distance_computations
        neighbors = graph.search(self.store, self.params, query, k, efs=efs)
        self.scan_stats.scans += 1
        self.scan_stats.candidates += self.store.counters.distance_computations - dist0
        if not neighbors:
            return ScanBatch.empty()
        tids = self.store.heap_tids([n.vector_id for n in neighbors])
        return ScanBatch(
            blknos=np.array([t.blkno for t in tids], dtype=np.int64),
            offsets=np.array([t.offset for t in tids], dtype=np.int64),
            distances=np.array([n.distance for n in neighbors], dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # in-filter search (amsearch_filtered)
    # ------------------------------------------------------------------
    def amsearch_filtered(
        self, query: np.ndarray, k: int, mask_fn: Any
    ) -> Iterator[tuple[TID, float]]:
        """In-filter search: the predicate rides inside the beam.

        ``mask_fn`` is evaluated on candidates' heap TIDs (batched per
        hop, cached across ef expansions); filtered-out nodes still
        route through the frontier but never enter the result heap.
        When fewer than k allowed nodes come back, the beam widens
        geometrically until k match or ef covers the live graph.
        """
        store = self.store
        if store is None or store.node_count() == 0:
            self.last_filtered_examined = 0
            return iter(())
        efs = int(self.catalog.get_setting("pase.efs"))
        query = np.ascontiguousarray(query, dtype=np.float32)
        store.profiler = self.profiler
        allowed_cache: dict[int, bool] = {}

        def allow(nodes: list[int]) -> list[bool]:
            fresh = [n for n in nodes if n not in allowed_cache]
            if fresh:
                live = [n for n in fresh if n not in store.removed]
                for n in fresh:
                    allowed_cache[n] = False
                if live:
                    tids = store.heap_tids(live)
                    for n, ok in zip(live, mask_fn(tids)):
                        allowed_cache[n] = bool(ok)
            return [allowed_cache[n] for n in nodes]

        live_nodes = max(store.node_count() - len(store.removed), 1)
        ef = max(efs, k)
        dist0 = store.counters.distance_computations
        while True:
            neighbors = graph.search_filtered(
                store, self.params, query, k, allow, efs=ef
            )
            if len(neighbors) >= k or ef >= live_nodes:
                break
            ef = min(live_nodes, ef * 2)
        self.scan_stats.scans += 1
        self.scan_stats.candidates += store.counters.distance_computations - dist0
        self.last_filtered_examined = len(allowed_cache)
        return iter(
            (store.heap_tid(n.vector_id), n.distance) for n in neighbors
        )

    def amestimate_candidates(self, ntuples: float, fetch_k: int) -> float:
        """Beam size the in-filter mask is charged for: ``ef * log2(n)``."""
        n = max(float(ntuples), 2.0)
        ef = float(max(int(self.catalog.get_setting("pase.efs")), fetch_k, 1))
        return min(n, ef * math.log2(n))

    # ------------------------------------------------------------------
    # planner cost estimate
    # ------------------------------------------------------------------
    def amcostestimate(self, ntuples: float, fetch_k: int, cost: Any) -> tuple[float, float]:
        """Beam-search cost: roughly ``ef * log2(n)`` candidates visited,
        each paying two page-tuple reads (data tuple + neighbor tuple)
        and one distance.  ``ef`` widens with ``fetch_k`` exactly as the
        search does when the executor over-fetches past ``ef_search``."""
        n = max(float(ntuples), 2.0)
        ef = float(max(int(self.catalog.get_setting("pase.efs")), fetch_k, 1))
        candidates = min(n, ef * math.log2(n))
        total = candidates * (
            2.0 * cost.cpu_index_tuple_cost + DISTANCE_OP_WEIGHT * cost.cpu_operator_cost
        )
        return total, total

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    def relations(self) -> list[str]:
        """Page-file names owned by this index."""
        return [self.relation_name(f) for f in ("data", "neighbors")]

    def size_info(self) -> IndexSizeInfo:
        page_size = self.buffer.disk.page_size
        detail: dict[str, int] = {}
        pages = 0
        used = 0
        for fork in ("data", "neighbors"):
            rel = self.relation_name(fork)
            if not self.buffer.disk.relation_exists(rel):
                continue
            n = self.buffer.disk.n_blocks(rel)
            pages += n
            detail[f"{fork}_pages"] = n
            for blkno in range(n):
                with self.buffer.page(rel, blkno) as page:
                    for off in page.live_items():
                        used += len(page.get_item_view(off))
        return IndexSizeInfo(
            allocated_bytes=pages * page_size,
            used_bytes=used,
            page_count=pages,
            detail=detail,
        )
