"""PASE IVF_SQ8: inverted file with scalar-quantized data pages.

Same page skeleton as :mod:`repro.pase.ivf_flat` with two SQ-specific
pieces: a **codec fork** holding the per-dimension quantization ranges
(two float32 rows), and data tuples that carry one-byte codes instead
of raw floats — a 4x space saving at a bounded recall cost
(Sec. II-B's IVF_SQ8).  All the PASE root causes apply unchanged:
per-row construction, buffer-managed tuple-at-a-time scans, size-*n*
heap.
"""

from __future__ import annotations

import struct
import time
from typing import Any, Iterator

import numpy as np

from repro.common import sq
from repro.common.heap import BoundedMaxHeap, NaiveTopK
from repro.common.kmeans import pase_kmeans, sample_training_rows
from repro.common.profiling import NULL_PROFILER
from repro.common.types import BuildStats, IndexSizeInfo
from repro.pase.ivf_flat import (
    _key_tid,
    _tid_key,
    compact_bucket_chains,
    ivf_filtered_scan,
)
from repro.pase.options import parse_ivf_options
from repro.pgsim.am import IndexAmRoutine, register_am
from repro.pgsim.paths import DISTANCE_OP_WEIGHT
from repro.pgsim.constants import LINE_POINTER_SIZE, PAGE_HEADER_SIZE
from repro.pgsim.heapam import TID
from repro.pgsim.page import PageFullError

_META = struct.Struct("<III")  # dim, clusters, distance_type
_CENTROID_HEAD = struct.Struct("<II")
_DATA_HEAD = struct.Struct("<IHxx")
_CODEC_HEAD = struct.Struct("<H")  # 0 = vmin row, 1 = vdiff row
_NEXT = struct.Struct("<I")
_NO_BLOCK = 0xFFFFFFFF

SEC_DISTANCE = "fvec_L2sqr"
SEC_TUPLE_ACCESS = "Tuple Access"
SEC_HEAP = "Min-heap"


@register_am
class PaseIVFSQ8(IndexAmRoutine):
    """IVF_SQ8 access method (PASE page layout)."""

    amname = "pase_ivfsq8"
    aliases = ("ivfsq8_fun",)
    amcanfilter = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.opts = parse_ivf_options(self.options)
        self.profiler = NULL_PROFILER
        self.build_stats = BuildStats()
        self.dim: int | None = None
        self._centroids_per_page: int | None = None
        self._codec: sq.SQ8Codec | None = None

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def build(self) -> None:
        rows = [(tid, values[self.column_index]) for tid, values in self.table.scan()]
        if not rows:
            raise RuntimeError("cannot build an IVF index over an empty table")
        vectors = np.vstack([v for __, v in rows]).astype(np.float32)
        self.dim = int(vectors.shape[1])
        n_clusters = min(self.opts.clusters, vectors.shape[0])

        start = time.perf_counter()
        self.progress.set_phase("sample")
        sample = sample_training_rows(
            vectors, self.opts.sample_ratio, n_clusters, self.opts.seed
        )
        self.progress.set_phase("kmeans")
        coarse = pase_kmeans(sample, n_clusters, self.opts.kmeans_iterations)
        self._codec = sq.train_codec(sample)
        self.build_stats.train_seconds = time.perf_counter() - start

        start = time.perf_counter()
        self.progress.set_phase("assign", tuples_total=len(rows))
        codes = sq.encode(self._codec, vectors)
        centroids = coarse.centroids
        buckets: list[list[tuple[TID, np.ndarray]]] = [[] for __ in range(n_clusters)]
        for i, (tid, __) in enumerate(rows):
            diff = centroids - vectors[i]
            dists = np.einsum("ij,ij->i", diff, diff)
            buckets[int(np.argmin(dists))].append((tid, codes[i]))
            self.progress.tick()
        self.build_stats.distance_computations += len(rows) * n_clusters

        self.progress.set_phase("flush")
        heads = [self._write_bucket(bucket) for bucket in buckets]
        self._write_centroids(centroids, heads)
        self._write_codec()
        self._write_meta(n_clusters)
        self.build_stats.add_seconds = time.perf_counter() - start
        self.build_stats.vectors_added = len(rows)

    def _write_meta(self, n_clusters: int) -> None:
        rel = self.create_fork("meta")
        __, frame = self.buffer.new_page(rel)
        try:
            frame.page.insert_item(
                _META.pack(self.dim, n_clusters, int(self.opts.distance_type))
            )
        finally:
            self.buffer.unpin(frame, dirty=True)

    def _write_codec(self) -> None:
        assert self._codec is not None
        rel = self.create_fork("codec")
        __, frame = self.buffer.new_page(rel)
        try:
            frame.page.insert_item(_CODEC_HEAD.pack(0) + self._codec.vmin.tobytes())
            frame.page.insert_item(_CODEC_HEAD.pack(1) + self._codec.vdiff.tobytes())
        finally:
            self.buffer.unpin(frame, dirty=True)

    def _write_centroids(self, centroids: np.ndarray, heads: list[int]) -> None:
        rel = self.create_fork("centroid")
        tuple_size = _CENTROID_HEAD.size + centroids.shape[1] * 4
        self._centroids_per_page = max(
            (self.buffer.disk.page_size - PAGE_HEADER_SIZE)
            // (tuple_size + LINE_POINTER_SIZE),
            1,
        )
        frame = None
        for i, (centroid, head) in enumerate(zip(centroids, heads)):
            if i % self._centroids_per_page == 0:
                if frame is not None:
                    self.buffer.unpin(frame, dirty=True)
                __, frame = self.buffer.new_page(rel)
            frame.page.insert_item(_CENTROID_HEAD.pack(i, head) + centroid.tobytes())
        if frame is not None:
            self.buffer.unpin(frame, dirty=True)

    def _write_bucket(self, bucket: list[tuple[TID, np.ndarray]]) -> int:
        rel = self.create_fork("data")
        head = _NO_BLOCK
        frame = None
        for tid, code in bucket:
            item = _DATA_HEAD.pack(tid.blkno, tid.offset) + code.tobytes()
            if frame is not None:
                try:
                    frame.page.insert_item(item)
                    continue
                except PageFullError:
                    self.buffer.unpin(frame, dirty=True)
                    frame = None
            blkno, frame = self.buffer.new_page(rel, special_size=_NEXT.size)
            frame.page.write_special(_NEXT.pack(head))
            head = blkno
            frame.page.insert_item(item)
        if frame is not None:
            self.buffer.unpin(frame, dirty=True)
        return head

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------
    def insert(self, tid: TID, value: Any) -> None:
        if self.dim is None:
            raise RuntimeError("index must be built before single inserts")
        codec = self._load_codec()
        vec = np.ascontiguousarray(value, dtype=np.float32)
        code = sq.encode(codec, vec.reshape(1, -1))[0]
        best_id, best_dist = -1, float("inf")
        for cent_id, __, centroid in self._iter_centroids():
            diff = centroid - vec
            dist = float(np.dot(diff, diff))
            if dist < best_dist:
                best_id, best_dist = cent_id, dist
        item = _DATA_HEAD.pack(tid.blkno, tid.offset) + code.tobytes()
        head = self._bucket_head(best_id)
        rel = self.relation_name("data")
        if head != _NO_BLOCK:
            frame = self.buffer.pin(rel, head)
            try:
                frame.page.insert_item(item)
            except PageFullError:
                self.buffer.unpin(frame)
            else:
                self.buffer.unpin(frame, dirty=True)
                return
        blkno, frame = self.buffer.new_page(rel, special_size=_NEXT.size)
        try:
            frame.page.write_special(_NEXT.pack(head))
            frame.page.insert_item(item)
        finally:
            self.buffer.unpin(frame, dirty=True)
        self._set_bucket_head(best_id, blkno)

    # ------------------------------------------------------------------
    # vacuum (ambulkdelete)
    # ------------------------------------------------------------------
    def ambulkdelete(self, dead_tids: set[TID]) -> int:
        """Compact bucket chains, dropping entries for vacuumed tuples.

        Compaction only, no re-centering: the data fork stores SQ8 codes,
        not raw vectors, so a centroid recomputed from decoded entries
        would drift from the codec's training frame.
        """
        if self.dim is None or not dead_tids:
            return 0
        removed_total = 0
        for __, removed, __s in compact_bucket_chains(self, dead_tids):
            removed_total += removed
            if removed:
                self.vacuum_progress.tick_index_entries(removed)
        return removed_total

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def scan(self, query: np.ndarray, k: int) -> Iterator[tuple[TID, float]]:
        if self.dim is None:
            raise RuntimeError("index has not been built")
        prof = self.profiler
        query = np.ascontiguousarray(query, dtype=np.float32)
        if query.shape != (self.dim,):
            raise ValueError(f"query must be {self.dim}-dim, got shape {query.shape}")
        nprobe = int(self.catalog.get_setting("pase.nprobe"))
        fixed_heap = bool(self.catalog.get_setting("pase.fixed_heap"))
        codec = self._load_codec()
        scale = codec.vdiff / sq.LEVELS

        cent_dists: list[float] = []
        heads: list[int] = []
        for __, head, centroid in self._iter_centroids():
            with prof.section(SEC_DISTANCE):
                diff = centroid - query
                cent_dists.append(float(np.dot(diff, diff)))
            heads.append(head)
        order = np.argsort(np.asarray(cent_dists), kind="stable")[: max(nprobe, 1)]

        heap = BoundedMaxHeap(k) if fixed_heap else NaiveTopK(k)
        worst = float("inf")
        candidates = 0
        for bucket in order.tolist():
            for tid, code in self._iter_bucket(heads[bucket]):
                candidates += 1
                with prof.section(SEC_DISTANCE):
                    # Tuple-at-a-time dequantize + distance (PASE style).
                    vec = code.astype(np.float32) * scale + codec.vmin
                    diff = vec - query
                    dist = float(np.dot(diff, diff))
                with prof.section(SEC_HEAP):
                    if fixed_heap:
                        if dist < worst:
                            heap.push(dist, _tid_key(tid))
                            worst = heap.worst_distance
                    else:
                        heap.push(dist, _tid_key(tid))
        self.scan_stats.scans += 1
        self.scan_stats.candidates += candidates
        with prof.section(SEC_HEAP):
            results = heap.results()
        for neighbor in results:
            yield _key_tid(neighbor.vector_id), neighbor.distance

    # ------------------------------------------------------------------
    # planner cost estimate
    # ------------------------------------------------------------------
    # ------------------------------------------------------------------
    # in-filter search (amsearch_filtered)
    # ------------------------------------------------------------------
    def amsearch_filtered(
        self, query: np.ndarray, k: int, mask_fn: Any
    ) -> Iterator[tuple[TID, float]]:
        """In-filter SQ8 scan: candidate TIDs are masked before any
        dequantize-and-distance work; the probe set widens while fewer
        than k candidates survive."""
        if self.dim is None:
            raise RuntimeError("index has not been built")
        prof = self.profiler
        query = np.ascontiguousarray(query, dtype=np.float32)
        if query.shape != (self.dim,):
            raise ValueError(f"query must be {self.dim}-dim, got shape {query.shape}")
        codec = self._load_codec()
        scale = codec.vdiff / sq.LEVELS

        cent_dists: list[float] = []
        heads: list[int] = []
        for __, head, centroid in self._iter_centroids():
            with prof.section(SEC_DISTANCE):
                diff = centroid - query
                cent_dists.append(float(np.dot(diff, diff)))
            heads.append(head)
        order = np.argsort(np.asarray(cent_dists), kind="stable")

        def score(code: np.ndarray) -> float:
            with prof.section(SEC_DISTANCE):
                vec = code.astype(np.float32) * scale + codec.vmin
                diff = vec - query
                return float(np.dot(diff, diff))

        return iter(
            ivf_filtered_scan(self, k, mask_fn, order.tolist(), heads, self._iter_bucket, score)
        )

    def amestimate_candidates(self, ntuples: float, fetch_k: int) -> float:
        """Candidates the in-filter mask must judge (probed share of n)."""
        n = max(float(ntuples), 1.0)
        clusters = max(1.0, min(float(self.opts.clusters), n))
        nprobe = float(min(max(int(self.catalog.get_setting("pase.nprobe")), 1), int(clusters)))
        return n * (nprobe / clusters)

    def amcostestimate(self, ntuples: float, fetch_k: int, cost: Any) -> tuple[float, float]:
        """IVF cost, with each probed candidate also paying a
        tuple-at-a-time SQ8 dequantization before its distance."""
        n = max(float(ntuples), 1.0)
        clusters = max(1.0, min(float(self.opts.clusters), n))
        nprobe = float(min(max(int(self.catalog.get_setting("pase.nprobe")), 1), int(clusters)))
        candidates = n * (nprobe / clusters)
        per_candidate = (DISTANCE_OP_WEIGHT + 2.0) * cost.cpu_operator_cost
        total = clusters * DISTANCE_OP_WEIGHT * cost.cpu_operator_cost
        total += candidates * (cost.cpu_index_tuple_cost + per_candidate)
        return total, total

    # ------------------------------------------------------------------
    # page iteration / codec
    # ------------------------------------------------------------------
    def _iter_centroids(self) -> Iterator[tuple[int, int, np.ndarray]]:
        rel = self.relation_name("centroid")
        prof = self.profiler
        for blkno in range(self.buffer.disk.n_blocks(rel)):
            frame = self.buffer.pin(rel, blkno)
            try:
                page = frame.page
                for off in range(1, page.item_count + 1):
                    with prof.section(SEC_TUPLE_ACCESS):
                        view = page.get_item_view(off)
                        cent_id, head = _CENTROID_HEAD.unpack_from(view, 0)
                        vec = np.frombuffer(view, dtype=np.float32, offset=_CENTROID_HEAD.size)
                    yield cent_id, head, vec
            finally:
                self.buffer.unpin(frame)

    def _iter_bucket(self, head: int) -> Iterator[tuple[TID, np.ndarray]]:
        rel = self.relation_name("data")
        prof = self.profiler
        blkno = head
        while blkno != _NO_BLOCK:
            frame = self.buffer.pin(rel, blkno)
            try:
                page = frame.page
                for off in range(1, page.item_count + 1):
                    with prof.section(SEC_TUPLE_ACCESS):
                        view = page.get_item_view(off)
                        heap_blk, heap_off = _DATA_HEAD.unpack_from(view, 0)
                        code = np.frombuffer(view, dtype=np.uint8, offset=_DATA_HEAD.size)
                    yield TID(heap_blk, heap_off), code
                (blkno,) = _NEXT.unpack(page.read_special())
            finally:
                self.buffer.unpin(frame)

    def _load_codec(self) -> sq.SQ8Codec:
        if self._codec is not None:
            return self._codec
        rel = self.relation_name("codec")
        parts: dict[int, np.ndarray] = {}
        with self.buffer.page(rel, 0) as page:
            for off in page.live_items():
                view = page.get_item_view(off)
                (which,) = _CODEC_HEAD.unpack_from(view, 0)
                parts[which] = np.frombuffer(
                    view, dtype=np.float32, offset=_CODEC_HEAD.size
                ).copy()
        self._codec = sq.SQ8Codec(vmin=parts[0], vdiff=parts[1])
        return self._codec

    def _centroid_location(self, centroid_id: int) -> tuple[int, int]:
        assert self._centroids_per_page is not None
        return (
            centroid_id // self._centroids_per_page,
            centroid_id % self._centroids_per_page + 1,
        )

    def _bucket_head(self, centroid_id: int) -> int:
        blkno, off = self._centroid_location(centroid_id)
        with self.buffer.page(self.relation_name("centroid"), blkno) as page:
            return _CENTROID_HEAD.unpack_from(page.get_item_view(off), 0)[1]

    def _set_bucket_head(self, centroid_id: int, head: int) -> None:
        blkno, off = self._centroid_location(centroid_id)
        frame = self.buffer.pin(self.relation_name("centroid"), blkno)
        try:
            struct.pack_into("<I", frame.page.get_item_view(off), 4, head)
        finally:
            self.buffer.unpin(frame, dirty=True)

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    def relations(self) -> list[str]:
        """Page-file names owned by this index."""
        return [self.relation_name(f) for f in ("meta", "codec", "centroid", "data")]

    def size_info(self) -> IndexSizeInfo:
        page_size = self.buffer.disk.page_size
        detail: dict[str, int] = {}
        pages = 0
        used = 0
        for fork in ("meta", "codec", "centroid", "data"):
            rel = self.relation_name(fork)
            if not self.buffer.disk.relation_exists(rel):
                continue
            n = self.buffer.disk.n_blocks(rel)
            pages += n
            detail[f"{fork}_pages"] = n
            for blkno in range(n):
                with self.buffer.page(rel, blkno) as page:
                    for off in page.live_items():
                        used += len(page.get_item_view(off))
        return IndexSizeInfo(
            allocated_bytes=pages * page_size,
            used_bytes=used,
            page_count=pages,
            detail=detail,
        )
