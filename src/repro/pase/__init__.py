"""PASE: vector index access methods inside the relational engine.

This subpackage reproduces PASE (the paper's Sec. II-E system): three
vector index types implemented as pgsim access methods, each laid out
on PostgreSQL-style pages and accessed through the buffer manager.
Every design decision the paper traces a root cause to is implemented
as described:

- per-row (non-SGEMM) distance computation during construction (RC#1),
- all tuple and neighbor access through the buffer manager (RC#2),
- a global locked heap for intra-query parallelism (RC#3, in
  :mod:`repro.pase.parallel`),
- 24-byte ``HNSWNeighborTuple`` entries and one fresh page per
  adjacency list (RC#4),
- PASE's own k-means flavour (RC#5),
- a size-*n* top-k heap (RC#6, switchable via ``SET pase.fixed_heap``),
- a naive per-cell ADC precomputed table in IVF_PQ (RC#7, switchable
  via ``SET pase.optimized_pctable``).

Importing the subpackage registers the AMs, so after
``import repro.pase`` a :class:`repro.pgsim.PgSimDatabase` understands
``CREATE INDEX ... USING pase_ivfflat | pase_ivfpq | pase_hnsw`` (and
the paper's ``*_fun`` aliases).
"""

from repro.pase.hnsw import PaseHNSW
from repro.pase.ivf_flat import PaseIVFFlat
from repro.pase.ivf_pq import PaseIVFPQ
from repro.pase.ivf_sq8 import PaseIVFSQ8

__all__ = ["PaseHNSW", "PaseIVFFlat", "PaseIVFPQ", "PaseIVFSQ8"]
