"""PASE-style intra-query parallelism: global heap + lock (RC#3).

The paper finds (Sec. VII-D) that PASE's parallel IVF search does not
scale because all worker threads "directly use a global heap with
locks to support concurrent insertions".  This driver executes the
bucket scans for real (one work unit per probed bucket), routes every
candidate through a :class:`~repro.common.heap.LockedGlobalHeap`, and
feeds the measured unit costs plus the counted lock operations into
the deterministic scheduler — each heap push is a serial critical
section, which is precisely why the curves in Fig. 18 stay flat.
"""

from __future__ import annotations

import time

import numpy as np

from repro.common import pq as pq_mod
from repro.common.heap import LockedGlobalHeap
from repro.common.parallel import ScheduleResult, WorkUnit, scaling_curve
from repro.common.types import SearchResult
from repro.pase.ivf_flat import PaseIVFFlat, _tid_key
from repro.pase.ivf_pq import PaseIVFPQ


def parallel_search(
    am: PaseIVFFlat | PaseIVFPQ,
    query: np.ndarray,
    k: int,
    nprobe: int,
    thread_counts: list[int],
) -> tuple[SearchResult, dict[int, ScheduleResult]]:
    """Intra-query parallel IVF search, PASE's shared-heap design.

    Returns the (correct) search result plus simulated wall-clock per
    thread count.
    """
    query = np.ascontiguousarray(query, dtype=np.float32)
    is_pq = isinstance(am, PaseIVFPQ)

    cent_dists: list[float] = []
    heads: list[int] = []
    for __, head, centroid in am._iter_centroids():
        diff = centroid - query
        cent_dists.append(float(np.dot(diff, diff)))
        heads.append(head)
    order = np.argsort(np.asarray(cent_dists), kind="stable")[: max(nprobe, 1)]

    table = None
    if is_pq:
        codebook = am._load_codebook()
        table = pq_mod.naive_adc_table(codebook, query)

    heap = LockedGlobalHeap(k)
    units: list[WorkUnit] = []
    for bucket in order.tolist():
        start = time.perf_counter()
        ops_before = heap.lock_acquisitions
        for tid, payload in am._iter_bucket(heads[bucket]):
            if is_pq:
                dist = pq_mod.adc_distance_single(table, payload)
            else:
                diff = payload - query
                dist = float(np.dot(diff, diff))
            # Every candidate goes through the global locked heap.
            heap.push(dist, _tid_key(tid))
        cost = time.perf_counter() - start
        units.append(
            WorkUnit(
                compute_seconds=cost,
                serial_ops=heap.lock_acquisitions - ops_before,
            )
        )

    curve = scaling_curve(units, thread_counts)
    neighbors = heap.results()
    return SearchResult(neighbors=neighbors), curve
