"""Index WITH-option parsing for the PASE access methods.

The paper's CREATE INDEX example configures IVF_FLAT with a
``clustering_params`` string whose first number is the sampling ratio
in thousandths ("The parameter 10 means that the sampling ratio is
10/1000") and whose second is the cluster count, plus a
``distance_type`` integer (0 = Euclidean).  Both that compact style
and explicit named options are accepted::

    WITH (clustering_params = '10,256', distance_type = 0)
    WITH (clusters = 256, sample_ratio = 0.01, distance_type = 0)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.common.types import DistanceType


class IndexOptionError(ValueError):
    """Raised for malformed or out-of-range index options."""


@dataclass(frozen=True, slots=True)
class IVFOptions:
    """Options shared by IVF_FLAT and IVF_PQ."""

    clusters: int = 256
    sample_ratio: float = 0.01
    distance_type: DistanceType = DistanceType.L2
    kmeans_iterations: int = 10
    seed: int | None = None


@dataclass(frozen=True, slots=True)
class IVFPQOptions:
    """IVF_PQ adds product-quantization parameters (paper's m, c_pq)."""

    ivf: IVFOptions
    m: int = 16
    c_pq: int = 256


@dataclass(frozen=True, slots=True)
class HNSWOptions:
    """HNSW construction parameters (paper's bnn, efb)."""

    bnn: int = 16
    efb: int = 40
    distance_type: DistanceType = DistanceType.L2
    seed: int | None = None


def _positive_int(options: Mapping[str, Any], key: str, default: int) -> int:
    value = options.get(key, default)
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise IndexOptionError(f"option {key!r} must be an integer, got {value!r}") from None
    if value <= 0:
        raise IndexOptionError(f"option {key!r} must be positive, got {value}")
    return value


def _distance_type(options: Mapping[str, Any]) -> DistanceType:
    raw = options.get("distance_type", 0)
    try:
        return DistanceType(int(raw))
    except (TypeError, ValueError):
        raise IndexOptionError(
            f"distance_type must be 0 (L2), 1 (inner product) or 2 (cosine), got {raw!r}"
        ) from None


def _seed(options: Mapping[str, Any]) -> int | None:
    raw = options.get("seed")
    return None if raw is None else int(raw)


def parse_ivf_options(options: Mapping[str, Any]) -> IVFOptions:
    """Parse IVF_FLAT options (both PASE-style and named styles)."""
    clusters = 256
    sample_ratio = 0.01
    if "clustering_params" in options:
        parts = str(options["clustering_params"]).split(",")
        if len(parts) != 2:
            raise IndexOptionError(
                f"clustering_params must be 'sr_thousandths,clusters', "
                f"got {options['clustering_params']!r}"
            )
        try:
            sample_ratio = int(parts[0]) / 1000.0
            clusters = int(parts[1])
        except ValueError:
            raise IndexOptionError(
                f"bad clustering_params: {options['clustering_params']!r}"
            ) from None
    clusters = _positive_int(options, "clusters", clusters)
    if "sample_ratio" in options:
        sample_ratio = float(options["sample_ratio"])
    if not 0.0 < sample_ratio <= 1.0:
        raise IndexOptionError(f"sample ratio must be in (0, 1], got {sample_ratio}")
    return IVFOptions(
        clusters=clusters,
        sample_ratio=sample_ratio,
        distance_type=_distance_type(options),
        kmeans_iterations=_positive_int(options, "kmeans_iterations", 10),
        seed=_seed(options),
    )


def parse_ivfpq_options(options: Mapping[str, Any]) -> IVFPQOptions:
    """Parse IVF_PQ options (IVF options plus m and c_pq)."""
    ivf = parse_ivf_options(options)
    m = _positive_int(options, "m", 16)
    c_pq = _positive_int(options, "c_pq", 256)
    if c_pq > 256:
        raise IndexOptionError(f"c_pq must fit a uint8 code (<= 256), got {c_pq}")
    return IVFPQOptions(ivf=ivf, m=m, c_pq=c_pq)


def parse_hnsw_options(options: Mapping[str, Any]) -> HNSWOptions:
    """Parse HNSW options (paper defaults: bnn=16, efb=40)."""
    return HNSWOptions(
        bnn=_positive_int(options, "bnn", 16),
        efb=_positive_int(options, "efb", 40),
        distance_type=_distance_type(options),
        seed=_seed(options),
    )
