"""PASE IVF_PQ: inverted file with product-quantized data pages.

Same skeleton as :mod:`repro.pase.ivf_flat` with two PQ-specific
pieces:

- a **codebook fork** storing the ``m * c_pq`` codeword sub-vectors as
  page tuples (``sub_space (u16) | codeword (u16) | sub-vector``);
  the decoded codebook is cached in memory after build/first load,
  like PASE's memory-resident PQ metadata — the paper's RC#7 is about
  how the *per-query table* is computed, not codebook storage;
- data tuples carry PQ codes instead of raw vectors:
  ``heap_blkno (u32) | heap_offset (u16) | pad | code (m bytes)``.

Search builds the per-query ADC table the PASE way — one
``fvec_L2sqr`` per table cell (RC#7) — unless
``SET pase.optimized_pctable = true`` enables the Faiss-style
decomposition, then scans bucket chains scoring one tuple at a time.
"""

from __future__ import annotations

import struct
import time
from typing import Any, Iterator

import numpy as np

from repro.common import pq
from repro.common.heap import BoundedMaxHeap, NaiveTopK
from repro.common.kmeans import pase_kmeans, sample_training_rows
from repro.common.profiling import NULL_PROFILER
from repro.common.types import BuildStats, IndexSizeInfo
from repro.pase.ivf_flat import (
    _key_tid,
    _tid_key,
    compact_bucket_chains,
    ivf_filtered_scan,
)
from repro.pase.options import parse_ivfpq_options
from repro.pgsim.am import IndexAmRoutine, ScanBatch, register_am, topk_batch
from repro.pgsim.constants import LINE_POINTER_SIZE, PAGE_HEADER_SIZE
from repro.pgsim.paths import DISTANCE_OP_WEIGHT
from repro.pgsim.heapam import TID
from repro.pgsim.page import PageFullError

_META = struct.Struct("<IIIII")  # dim, clusters, distance_type, m, c_pq
_CENTROID_HEAD = struct.Struct("<II")
_DATA_HEAD = struct.Struct("<IHxx")
_CODEBOOK_HEAD = struct.Struct("<HH")  # sub-space, codeword id
_NEXT = struct.Struct("<I")

_NO_BLOCK = 0xFFFFFFFF

SEC_DISTANCE = "fvec_L2sqr"
SEC_TUPLE_ACCESS = "Tuple Access"
SEC_HEAP = "Min-heap"
SEC_PCTABLE = "Pctable"


@register_am
class PaseIVFPQ(IndexAmRoutine):
    """IVF_PQ access method (PASE page layout)."""

    amname = "pase_ivfpq"
    aliases = ("ivfpq_fun",)
    amcanfilter = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.opts = parse_ivfpq_options(self.options)
        self.profiler = NULL_PROFILER
        self.build_stats = BuildStats()
        self.dim: int | None = None
        self._centroids_per_page: int | None = None
        self._codebook: pq.PQCodebook | None = None

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def build(self) -> None:
        rows = [(tid, values[self.column_index]) for tid, values in self.table.scan()]
        if not rows:
            raise RuntimeError("cannot build an IVF index over an empty table")
        vectors = np.vstack([v for __, v in rows]).astype(np.float32)
        self.dim = int(vectors.shape[1])
        if self.dim % self.opts.m != 0:
            raise ValueError(
                f"vector dim {self.dim} is not divisible by m={self.opts.m}"
            )
        n_clusters = min(self.opts.ivf.clusters, vectors.shape[0])
        c_pq = min(self.opts.c_pq, vectors.shape[0])

        start = time.perf_counter()
        self.progress.set_phase("sample")
        sample = sample_training_rows(
            vectors, self.opts.ivf.sample_ratio, max(n_clusters, c_pq), self.opts.ivf.seed
        )
        self.progress.set_phase("kmeans")
        coarse = pase_kmeans(sample, n_clusters, self.opts.ivf.kmeans_iterations)
        self._codebook = pq.train_codebook(
            sample,
            self.opts.m,
            c_pq,
            max_iterations=self.opts.ivf.kmeans_iterations,
            seed=self.opts.ivf.seed,
            style="pase",
        )
        self.build_stats.train_seconds = time.perf_counter() - start

        start = time.perf_counter()
        self.progress.set_phase("assign", tuples_total=len(rows))
        codes = pq.encode(self._codebook, vectors)
        buckets: list[list[tuple[TID, np.ndarray]]] = [[] for _ in range(n_clusters)]
        centroids = coarse.centroids
        for i, (tid, __) in enumerate(rows):
            diff = centroids - vectors[i]
            dists = np.einsum("ij,ij->i", diff, diff)
            buckets[int(np.argmin(dists))].append((tid, codes[i]))
            self.progress.tick()
        self.build_stats.distance_computations += len(rows) * n_clusters

        self.progress.set_phase("flush")
        heads = [self._write_bucket(bucket) for bucket in buckets]
        self._write_centroids(centroids, heads)
        self._write_codebook()
        self._write_meta(n_clusters, c_pq)
        self.build_stats.add_seconds = time.perf_counter() - start
        self.build_stats.vectors_added = len(rows)

    def _write_meta(self, n_clusters: int, c_pq: int) -> None:
        rel = self.create_fork("meta")
        __, frame = self.buffer.new_page(rel)
        try:
            frame.page.insert_item(
                _META.pack(
                    self.dim,
                    n_clusters,
                    int(self.opts.ivf.distance_type),
                    self.opts.m,
                    c_pq,
                )
            )
        finally:
            self.buffer.unpin(frame, dirty=True)

    def _write_centroids(self, centroids: np.ndarray, heads: list[int]) -> None:
        rel = self.create_fork("centroid")
        tuple_size = _CENTROID_HEAD.size + centroids.shape[1] * 4
        self._centroids_per_page = max(
            (self.buffer.disk.page_size - PAGE_HEADER_SIZE)
            // (tuple_size + LINE_POINTER_SIZE),
            1,
        )
        frame = None
        for i, (centroid, head) in enumerate(zip(centroids, heads)):
            if i % self._centroids_per_page == 0:
                if frame is not None:
                    self.buffer.unpin(frame, dirty=True)
                __, frame = self.buffer.new_page(rel)
            frame.page.insert_item(_CENTROID_HEAD.pack(i, head) + centroid.tobytes())
        if frame is not None:
            self.buffer.unpin(frame, dirty=True)

    def _write_codebook(self) -> None:
        assert self._codebook is not None
        rel = self.create_fork("codebook")
        frame = None
        for j in range(self._codebook.m):
            for c in range(self._codebook.c_pq):
                item = _CODEBOOK_HEAD.pack(j, c) + self._codebook.codebooks[j, c].tobytes()
                if frame is not None:
                    try:
                        frame.page.insert_item(item)
                        continue
                    except PageFullError:
                        self.buffer.unpin(frame, dirty=True)
                        frame = None
                __, frame = self.buffer.new_page(rel)
                frame.page.insert_item(item)
        if frame is not None:
            self.buffer.unpin(frame, dirty=True)

    def _write_bucket(self, bucket: list[tuple[TID, np.ndarray]]) -> int:
        rel = self.create_fork("data")
        head = _NO_BLOCK
        frame = None
        for tid, code in bucket:
            item = _DATA_HEAD.pack(tid.blkno, tid.offset) + code.tobytes()
            if frame is not None:
                try:
                    frame.page.insert_item(item)
                    continue
                except PageFullError:
                    self.buffer.unpin(frame, dirty=True)
                    frame = None
            blkno, frame = self.buffer.new_page(rel, special_size=_NEXT.size)
            frame.page.write_special(_NEXT.pack(head))
            head = blkno
            frame.page.insert_item(item)
        if frame is not None:
            self.buffer.unpin(frame, dirty=True)
        return head

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------
    def insert(self, tid: TID, value: Any) -> None:
        if self.dim is None or self._codebook is None:
            raise RuntimeError("index must be built before single inserts")
        vec = np.ascontiguousarray(value, dtype=np.float32)
        if vec.shape != (self.dim,):
            raise ValueError(f"expected a {self.dim}-dim vector, got shape {vec.shape}")
        code = pq.encode(self._codebook, vec.reshape(1, -1))[0]
        best_id, best_dist = -1, float("inf")
        for cent_id, __, centroid in self._iter_centroids():
            diff = centroid - vec
            dist = float(np.dot(diff, diff))
            if dist < best_dist:
                best_id, best_dist = cent_id, dist
        item = _DATA_HEAD.pack(tid.blkno, tid.offset) + code.tobytes()
        head = self._bucket_head(best_id)
        rel = self.relation_name("data")
        if head != _NO_BLOCK:
            frame = self.buffer.pin(rel, head)
            try:
                frame.page.insert_item(item)
            except PageFullError:
                self.buffer.unpin(frame)
            else:
                self.buffer.unpin(frame, dirty=True)
                return
        blkno, frame = self.buffer.new_page(rel, special_size=_NEXT.size)
        try:
            frame.page.write_special(_NEXT.pack(head))
            frame.page.insert_item(item)
        finally:
            self.buffer.unpin(frame, dirty=True)
        self._set_bucket_head(best_id, blkno)

    # ------------------------------------------------------------------
    # vacuum (ambulkdelete)
    # ------------------------------------------------------------------
    def ambulkdelete(self, dead_tids: set[TID]) -> int:
        """Compact bucket chains, dropping entries for vacuumed tuples.

        Compaction only, no re-centering: the data fork stores PQ codes,
        not raw vectors, so a centroid recomputed from decoded entries
        would drift from the codec's training frame.
        """
        if self.dim is None or not dead_tids:
            return 0
        removed_total = 0
        for __, removed, __s in compact_bucket_chains(self, dead_tids):
            removed_total += removed
            if removed:
                self.vacuum_progress.tick_index_entries(removed)
        return removed_total

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def scan(self, query: np.ndarray, k: int) -> Iterator[tuple[TID, float]]:
        if self.dim is None:
            raise RuntimeError("index has not been built")
        prof = self.profiler
        query = np.ascontiguousarray(query, dtype=np.float32)
        if query.shape != (self.dim,):
            raise ValueError(f"query must be {self.dim}-dim, got shape {query.shape}")
        nprobe = int(self.catalog.get_setting("pase.nprobe"))
        fixed_heap = self.catalog.get_bool("pase.fixed_heap")
        optimized = self.catalog.get_bool("pase.optimized_pctable")
        codebook = self._load_codebook()

        cent_dists: list[float] = []
        heads: list[int] = []
        for __, head, centroid in self._iter_centroids():
            with prof.section(SEC_DISTANCE):
                diff = centroid - query
                cent_dists.append(float(np.dot(diff, diff)))
            heads.append(head)
        order = np.argsort(np.asarray(cent_dists), kind="stable")[: max(nprobe, 1)]

        with prof.section(SEC_PCTABLE):
            if optimized:
                table = pq.optimized_adc_table(codebook, query)
            else:
                table = pq.naive_adc_table(codebook, query)

        candidates = 0
        if fixed_heap:
            heap = BoundedMaxHeap(k)
            worst = heap.worst_distance
            for bucket in order.tolist():
                for tid, code in self._iter_bucket(heads[bucket]):
                    candidates += 1
                    with prof.section(SEC_DISTANCE):
                        dist = pq.adc_distance_single(table, code)
                    with prof.section(SEC_HEAP):
                        if dist < worst:
                            heap.push(dist, _tid_key(tid))
                            worst = heap.worst_distance
        else:
            heap = NaiveTopK(k)
            for bucket in order.tolist():
                for tid, code in self._iter_bucket(heads[bucket]):
                    candidates += 1
                    with prof.section(SEC_DISTANCE):
                        dist = pq.adc_distance_single(table, code)
                    with prof.section(SEC_HEAP):
                        heap.push(dist, _tid_key(tid))
        self.scan_stats.scans += 1
        self.scan_stats.candidates += candidates
        with prof.section(SEC_HEAP):
            results = heap.results()
        for neighbor in results:
            yield _key_tid(neighbor.vector_id), neighbor.distance

    def get_batch(self, query: np.ndarray, k: int) -> ScanBatch:
        """Batched scan: bucket code matrices scored by array ADC lookups.

        Accumulates the ADC sum column-by-column in float64 — the same
        sub-space order and precision as
        :func:`repro.common.pq.adc_distance_single` — so both executor
        paths compute bit-identical distances.
        """
        if self.dim is None:
            raise RuntimeError("index has not been built")
        prof = self.profiler
        query = np.ascontiguousarray(query, dtype=np.float32)
        if query.shape != (self.dim,):
            raise ValueError(f"query must be {self.dim}-dim, got shape {query.shape}")
        nprobe = int(self.catalog.get_setting("pase.nprobe"))
        optimized = self.catalog.get_bool("pase.optimized_pctable")
        codebook = self._load_codebook()

        cent_dists: list[float] = []
        heads: list[int] = []
        for __, head, centroid in self._iter_centroids():
            with prof.section(SEC_DISTANCE):
                diff = centroid - query
                cent_dists.append(float(np.dot(diff, diff)))
            heads.append(head)
        order = np.argsort(np.asarray(cent_dists), kind="stable")[: max(nprobe, 1)]

        with prof.section(SEC_PCTABLE):
            if optimized:
                table = pq.optimized_adc_table(codebook, query)
            else:
                table = pq.naive_adc_table(codebook, query)

        key_parts: list[np.ndarray] = []
        dist_parts: list[np.ndarray] = []
        self.scan_stats.scans += 1
        for bucket in order.tolist():
            with prof.section(SEC_TUPLE_ACCESS):
                keys, codes = self._gather_bucket(heads[bucket])
            if keys.shape[0] == 0:
                continue
            self.scan_stats.candidates += int(keys.shape[0])
            with prof.section(SEC_DISTANCE):
                acc = np.zeros(codes.shape[0], dtype=np.float64)
                for j in range(table.shape[0]):
                    acc += table[j, codes[:, j]]
                dist_parts.append(acc)
            key_parts.append(keys)
        with prof.section(SEC_HEAP):
            if not key_parts:
                return ScanBatch.empty()
            return topk_batch(np.concatenate(key_parts), np.concatenate(dist_parts), k)

    # ------------------------------------------------------------------
    # planner cost estimate
    # ------------------------------------------------------------------
    # ------------------------------------------------------------------
    # in-filter search (amsearch_filtered)
    # ------------------------------------------------------------------
    def amsearch_filtered(
        self, query: np.ndarray, k: int, mask_fn: Any
    ) -> Iterator[tuple[TID, float]]:
        """In-filter ADC scan: candidate TIDs are masked before any
        table lookups, and the probe set widens geometrically while
        fewer than k candidates survive."""
        if self.dim is None:
            raise RuntimeError("index has not been built")
        prof = self.profiler
        query = np.ascontiguousarray(query, dtype=np.float32)
        if query.shape != (self.dim,):
            raise ValueError(f"query must be {self.dim}-dim, got shape {query.shape}")
        codebook = self._load_codebook()
        with prof.section(SEC_PCTABLE):
            if self.catalog.get_bool("pase.optimized_pctable"):
                table = pq.optimized_adc_table(codebook, query)
            else:
                table = pq.naive_adc_table(codebook, query)

        cent_dists: list[float] = []
        heads: list[int] = []
        for __, head, centroid in self._iter_centroids():
            with prof.section(SEC_DISTANCE):
                diff = centroid - query
                cent_dists.append(float(np.dot(diff, diff)))
            heads.append(head)
        order = np.argsort(np.asarray(cent_dists), kind="stable")

        def score(code: np.ndarray) -> float:
            with prof.section(SEC_DISTANCE):
                return pq.adc_distance_single(table, code)

        return iter(
            ivf_filtered_scan(self, k, mask_fn, order.tolist(), heads, self._iter_bucket, score)
        )

    def amestimate_candidates(self, ntuples: float, fetch_k: int) -> float:
        """Candidates the in-filter mask must judge (probed share of n)."""
        n = max(float(ntuples), 1.0)
        clusters = max(1.0, min(float(self.opts.ivf.clusters), n))
        nprobe = float(min(max(int(self.catalog.get_setting("pase.nprobe")), 1), int(clusters)))
        return n * (nprobe / clusters)

    def amcostestimate(self, ntuples: float, fetch_k: int, cost: Any) -> tuple[float, float]:
        """IVF cost with ADC distances: building the per-query lookup
        table costs ``c_pq * m`` operators up front, after which each
        probed candidate's distance is ``m`` table lookups — far cheaper
        than a full float distance."""
        n = max(float(ntuples), 1.0)
        clusters = max(1.0, min(float(self.opts.ivf.clusters), n))
        nprobe = float(min(max(int(self.catalog.get_setting("pase.nprobe")), 1), int(clusters)))
        candidates = n * (nprobe / clusters)
        total = clusters * DISTANCE_OP_WEIGHT * cost.cpu_operator_cost
        total += float(self.opts.c_pq * self.opts.m) * cost.cpu_operator_cost
        total += candidates * (cost.cpu_index_tuple_cost + 3.0 * cost.cpu_operator_cost)
        return total, total

    # ------------------------------------------------------------------
    # page iteration
    # ------------------------------------------------------------------
    def _iter_centroids(self) -> Iterator[tuple[int, int, np.ndarray]]:
        rel = self.relation_name("centroid")
        prof = self.profiler
        for blkno in range(self.buffer.disk.n_blocks(rel)):
            frame = self.buffer.pin(rel, blkno)
            try:
                page = frame.page
                for off in range(1, page.item_count + 1):
                    with prof.section(SEC_TUPLE_ACCESS):
                        view = page.get_item_view(off)
                        cent_id, head = _CENTROID_HEAD.unpack_from(view, 0)
                        vec = np.frombuffer(view, dtype=np.float32, offset=_CENTROID_HEAD.size)
                    yield cent_id, head, vec
            finally:
                self.buffer.unpin(frame)

    def _iter_bucket(self, head: int) -> Iterator[tuple[TID, np.ndarray]]:
        rel = self.relation_name("data")
        prof = self.profiler
        blkno = head
        while blkno != _NO_BLOCK:
            frame = self.buffer.pin(rel, blkno)
            try:
                page = frame.page
                for off in range(1, page.item_count + 1):
                    with prof.section(SEC_TUPLE_ACCESS):
                        view = page.get_item_view(off)
                        heap_blk, heap_off = _DATA_HEAD.unpack_from(view, 0)
                        code = np.frombuffer(view, dtype=np.uint8, offset=_DATA_HEAD.size)
                    yield TID(heap_blk, heap_off), code
                (blkno,) = _NEXT.unpack(page.read_special())
            finally:
                self.buffer.unpin(frame)

    def _gather_bucket(self, head: int) -> tuple[np.ndarray, np.ndarray]:
        """Collect one bucket as ``(packed TID keys, PQ code matrix)``.

        Data pages are append-only with fixed-size tuples, so the tuple
        area decodes wholesale (see ``_decode_data_page`` in ivf_flat);
        code tuples are narrow, so headers split via contiguous copies.
        """
        item_size = _DATA_HEAD.size + self.opts.m
        key_parts: list[np.ndarray] = []
        code_parts: list[np.ndarray] = []
        rel = self.relation_name("data")
        blkno = head
        while blkno != _NO_BLOCK:
            frame = self.buffer.pin(rel, blkno)
            try:
                page = frame.page
                n = page.item_count
                upper = page.upper
                if n and page.special - upper == n * item_size:
                    mat = np.frombuffer(
                        page.buf, dtype=np.uint8, count=n * item_size, offset=upper
                    ).reshape(n, item_size)
                    blks = np.ascontiguousarray(mat[:, 0:4]).view("<u4").reshape(n)
                    offs = np.ascontiguousarray(mat[:, 4:6]).view("<u2").reshape(n)
                    key_parts.append(
                        (blks.astype(np.int64) << 16) | offs.astype(np.int64)
                    )
                    code_parts.append(mat[:, _DATA_HEAD.size :])
                elif n:
                    keys = np.empty(n, dtype=np.int64)
                    codes: list[np.ndarray] = []
                    for off in range(1, n + 1):
                        view = page.get_item_view(off)
                        heap_blk, heap_off = _DATA_HEAD.unpack_from(view, 0)
                        keys[off - 1] = (heap_blk << 16) | heap_off
                        codes.append(
                            np.frombuffer(view, dtype=np.uint8, offset=_DATA_HEAD.size)
                        )
                    key_parts.append(keys)
                    code_parts.append(np.vstack(codes))
                (blkno,) = _NEXT.unpack(page.read_special())
            finally:
                self.buffer.unpin(frame)
        if not key_parts:
            return np.empty(0, dtype=np.int64), np.empty((0, self.opts.m), dtype=np.uint8)
        return np.concatenate(key_parts), np.vstack(code_parts)

    def _load_codebook(self) -> pq.PQCodebook:
        """Decode codebook pages once and cache (PASE keeps it resident)."""
        if self._codebook is not None:
            return self._codebook
        rel = self.relation_name("codebook")
        with self.buffer.page(self.relation_name("meta"), 0) as page:
            dim, __, __, m, c_pq = _META.unpack_from(page.get_item_view(1), 0)
        d_sub = dim // m
        books = np.empty((m, c_pq, d_sub), dtype=np.float32)
        for blkno in range(self.buffer.disk.n_blocks(rel)):
            with self.buffer.page(rel, blkno) as page:
                for off in page.live_items():
                    view = page.get_item_view(off)
                    j, c = _CODEBOOK_HEAD.unpack_from(view, 0)
                    books[j, c] = np.frombuffer(
                        view, dtype=np.float32, offset=_CODEBOOK_HEAD.size
                    )
        norms = np.stack(
            [np.einsum("ij,ij->i", books[j], books[j]) for j in range(m)]
        )
        self._codebook = pq.PQCodebook(codebooks=books, codeword_sq_norms=norms)
        return self._codebook

    # ------------------------------------------------------------------
    # centroid tuple updates (same addressing as IVF_FLAT)
    # ------------------------------------------------------------------
    def _centroid_location(self, centroid_id: int) -> tuple[int, int]:
        assert self._centroids_per_page is not None
        return (
            centroid_id // self._centroids_per_page,
            centroid_id % self._centroids_per_page + 1,
        )

    def _bucket_head(self, centroid_id: int) -> int:
        blkno, off = self._centroid_location(centroid_id)
        with self.buffer.page(self.relation_name("centroid"), blkno) as page:
            return _CENTROID_HEAD.unpack_from(page.get_item_view(off), 0)[1]

    def _set_bucket_head(self, centroid_id: int, head: int) -> None:
        blkno, off = self._centroid_location(centroid_id)
        frame = self.buffer.pin(self.relation_name("centroid"), blkno)
        try:
            struct.pack_into("<I", frame.page.get_item_view(off), 4, head)
        finally:
            self.buffer.unpin(frame, dirty=True)

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    def relations(self) -> list[str]:
        """Page-file names owned by this index."""
        return [self.relation_name(f) for f in ("meta", "centroid", "codebook", "data")]

    def size_info(self) -> IndexSizeInfo:
        page_size = self.buffer.disk.page_size
        detail: dict[str, int] = {}
        pages = 0
        used = 0
        for fork in ("meta", "centroid", "codebook", "data"):
            rel = self.relation_name(fork)
            if not self.buffer.disk.relation_exists(rel):
                continue
            n = self.buffer.disk.n_blocks(rel)
            pages += n
            detail[f"{fork}_pages"] = n
            for blkno in range(n):
                with self.buffer.page(rel, blkno) as page:
                    for off in page.live_items():
                        used += len(page.get_item_view(off))
        return IndexSizeInfo(
            allocated_bytes=pages * page_size,
            used_bytes=used,
            page_count=pages,
            detail=detail,
        )
