"""pgvector-like comparator access method (the paper's Fig. 2).

Figure 2 of the paper ranks PASE fastest among open-sourced
generalized vector databases, with pgvector trailing.  At the time of
the paper, pgvector supported only IVF_FLAT and — unlike PASE, which
stores vectors inside its index data pages — kept only TIDs in index
pages, fetching every candidate's vector from the base heap table
during the scan.  That extra heap round trip per candidate is the
architectural reason it trails PASE, and it is what
:mod:`repro.pgvector.ivf_flat` implements.

Importing this subpackage registers the ``ivfflat`` access method
(pgvector's SQL name).
"""

from repro.pgvector.ivf_flat import PgVectorIVFFlat

__all__ = ["PgVectorIVFFlat"]
