"""pgvector-style IVF_FLAT: TID-only index pages, heap fetch per candidate.

Layout differences from :class:`repro.pase.ivf_flat.PaseIVFFlat`:

- data-fork tuples hold **only the heap TID** (8 bytes), not the
  vector — so every scanned candidate costs an extra heap-table
  round trip through the buffer manager to get its vector;
- centroid pages and chains are otherwise identical.

This makes the index much smaller but the scan slower, which is the
architectural gap behind the paper's Fig. 2 ordering (PASE fastest
among the generalized systems).
"""

from __future__ import annotations

import struct
import time
from typing import Any, Iterator

import numpy as np

from repro.common.distance import pairwise_kernel, rows_kernel
from repro.common.heap import NaiveTopK
from repro.common.kmeans import pase_kmeans, sample_training_rows
from repro.common.profiling import NULL_PROFILER
from repro.common.types import BuildStats, IndexSizeInfo
from repro.pase.ivf_flat import _key_tid as key_to_tid
from repro.pase.ivf_flat import _tid_key, compact_bucket_chains, ivf_filtered_scan
from repro.pase.options import parse_ivf_options
from repro.pgsim.am import IndexAmRoutine, ScanBatch, register_am, topk_batch
from repro.pgsim.constants import LINE_POINTER_SIZE, PAGE_HEADER_SIZE
from repro.pgsim.paths import DISTANCE_OP_WEIGHT
from repro.pgsim.heapam import TID
from repro.pgsim.page import PageFullError

_CENTROID_HEAD = struct.Struct("<II")
_TID_TUPLE = struct.Struct("<IHxx")  # heap blkno, heap offset, pad
_NEXT = struct.Struct("<I")
_NO_BLOCK = 0xFFFFFFFF

SEC_DISTANCE = "fvec_L2sqr"
SEC_TUPLE_ACCESS = "Tuple Access"
SEC_HEAP_FETCH = "Heap Fetch"
SEC_HEAP = "Min-heap"


@register_am
class PgVectorIVFFlat(IndexAmRoutine):
    """IVF_FLAT with TID-only index entries (pgvector's design)."""

    amname = "ivfflat"
    amcanfilter = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.opts = parse_ivf_options(self.options)
        self.profiler = NULL_PROFILER
        self.build_stats = BuildStats()
        self.dim: int | None = None
        self._centroids_per_page: int | None = None

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def build(self) -> None:
        rows = [(tid, values[self.column_index]) for tid, values in self.table.scan()]
        if not rows:
            raise RuntimeError("cannot build an IVF index over an empty table")
        vectors = np.vstack([v for __, v in rows]).astype(np.float32)
        self.dim = int(vectors.shape[1])
        n_clusters = min(self.opts.clusters, vectors.shape[0])

        start = time.perf_counter()
        self.progress.set_phase("sample")
        sample = sample_training_rows(
            vectors, self.opts.sample_ratio, n_clusters, self.opts.seed
        )
        self.progress.set_phase("kmeans")
        centroids = pase_kmeans(sample, n_clusters, self.opts.kmeans_iterations).centroids
        self.build_stats.train_seconds = time.perf_counter() - start

        start = time.perf_counter()
        self.progress.set_phase("assign", tuples_total=len(rows))
        buckets: list[list[TID]] = [[] for _ in range(n_clusters)]
        for (tid, __), vec in zip(rows, vectors):
            diff = centroids - vec
            dists = np.einsum("ij,ij->i", diff, diff)
            buckets[int(np.argmin(dists))].append(tid)
            self.progress.tick()
        self.build_stats.distance_computations += len(rows) * n_clusters

        self.progress.set_phase("flush")
        heads = [self._write_bucket(bucket) for bucket in buckets]
        self._write_centroids(centroids, heads)
        self.build_stats.add_seconds = time.perf_counter() - start
        self.build_stats.vectors_added = len(rows)

    def _write_centroids(self, centroids: np.ndarray, heads: list[int]) -> None:
        rel = self.create_fork("centroid")
        tuple_size = _CENTROID_HEAD.size + centroids.shape[1] * 4
        self._centroids_per_page = max(
            (self.buffer.disk.page_size - PAGE_HEADER_SIZE)
            // (tuple_size + LINE_POINTER_SIZE),
            1,
        )
        frame = None
        for i, (centroid, head) in enumerate(zip(centroids, heads)):
            if i % self._centroids_per_page == 0:
                if frame is not None:
                    self.buffer.unpin(frame, dirty=True)
                __, frame = self.buffer.new_page(rel)
            frame.page.insert_item(_CENTROID_HEAD.pack(i, head) + centroid.tobytes())
        if frame is not None:
            self.buffer.unpin(frame, dirty=True)

    def _write_bucket(self, bucket: list[TID]) -> int:
        rel = self.create_fork("data")
        head = _NO_BLOCK
        frame = None
        for tid in bucket:
            item = _TID_TUPLE.pack(tid.blkno, tid.offset)
            if frame is not None:
                try:
                    frame.page.insert_item(item)
                    continue
                except PageFullError:
                    self.buffer.unpin(frame, dirty=True)
                    frame = None
            blkno, frame = self.buffer.new_page(rel, special_size=_NEXT.size)
            frame.page.write_special(_NEXT.pack(head))
            head = blkno
            frame.page.insert_item(item)
        if frame is not None:
            self.buffer.unpin(frame, dirty=True)
        return head

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------
    def insert(self, tid: TID, value: Any) -> None:
        if self.dim is None:
            raise RuntimeError("index must be built before single inserts")
        vec = np.ascontiguousarray(value, dtype=np.float32)
        best_id, best_dist = -1, float("inf")
        for cent_id, __, centroid in self._iter_centroids():
            diff = centroid - vec
            dist = float(np.dot(diff, diff))
            if dist < best_dist:
                best_id, best_dist = cent_id, dist
        item = _TID_TUPLE.pack(tid.blkno, tid.offset)
        head = self._bucket_head(best_id)
        rel = self.relation_name("data")
        if head != _NO_BLOCK:
            frame = self.buffer.pin(rel, head)
            try:
                frame.page.insert_item(item)
            except PageFullError:
                self.buffer.unpin(frame)
            else:
                self.buffer.unpin(frame, dirty=True)
                return
        blkno, frame = self.buffer.new_page(rel, special_size=_NEXT.size)
        try:
            frame.page.write_special(_NEXT.pack(head))
            frame.page.insert_item(item)
        finally:
            self.buffer.unpin(frame, dirty=True)
        self._set_bucket_head(best_id, blkno)

    # ------------------------------------------------------------------
    # vacuum (ambulkdelete)
    # ------------------------------------------------------------------
    def ambulkdelete(self, dead_tids: set[TID]) -> int:
        """Compact bucket chains, dropping entries for vacuumed tuples.

        The TID-only tuples share the PASE chain layout (same 8-byte
        ``blkno | offset | pad`` prefix, just no vector payload), so
        the shared raw-bytes compaction applies unchanged.  No
        re-centering: the index holds no vectors to recompute from.
        """
        if self.dim is None or not dead_tids:
            return 0
        removed_total = 0
        for __, removed, __s in compact_bucket_chains(self, dead_tids):
            removed_total += removed
            if removed:
                self.vacuum_progress.tick_index_entries(removed)
        return removed_total

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def scan(self, query: np.ndarray, k: int) -> Iterator[tuple[TID, float]]:
        if self.dim is None:
            raise RuntimeError("index has not been built")
        prof = self.profiler
        query = np.ascontiguousarray(query, dtype=np.float32)
        nprobe = int(self.catalog.get_setting("pase.nprobe"))
        kernel = pairwise_kernel(self.opts.distance_type)

        cent_dists: list[float] = []
        heads: list[int] = []
        for __, head, centroid in self._iter_centroids():
            with prof.section(SEC_DISTANCE):
                cent_dists.append(kernel(query, centroid))
            heads.append(head)
        order = np.argsort(np.asarray(cent_dists), kind="stable")[: max(nprobe, 1)]

        heap = NaiveTopK(k)
        candidates = 0
        for bucket in order.tolist():
            for tid in self._iter_bucket(heads[bucket]):
                candidates += 1
                # The defining pgvector cost: fetch the candidate's
                # vector from the base heap table.  Any-version fetch:
                # tombstoned tuples still score (the executor filters
                # by snapshot); only physically reclaimed slots skip.
                with prof.section(SEC_HEAP_FETCH):
                    vec = self.table.fetch_column_any(tid, self.column_index)
                if vec is None:
                    continue
                with prof.section(SEC_DISTANCE):
                    dist = kernel(query, np.asarray(vec, dtype=np.float32))
                with prof.section(SEC_HEAP):
                    heap.push(dist, _tid_key(tid))
        self.scan_stats.scans += 1
        self.scan_stats.candidates += candidates
        for neighbor in heap.results():
            yield key_to_tid(neighbor.vector_id), neighbor.distance

    def get_batch(self, query: np.ndarray, k: int) -> ScanBatch:
        """Batched scan: block-grouped heap gathers + one kernel call.

        The tuple path pays one heap-table round trip per candidate
        (pgvector's defining cost); here candidate vectors are fetched
        via :meth:`HeapTable.fetch_column_many` — one buffer pin per
        heap block — and scored in a single row-wise kernel call.
        """
        if self.dim is None:
            raise RuntimeError("index has not been built")
        prof = self.profiler
        query = np.ascontiguousarray(query, dtype=np.float32)
        nprobe = int(self.catalog.get_setting("pase.nprobe"))
        kernel = pairwise_kernel(self.opts.distance_type)
        rows = rows_kernel(self.opts.distance_type)

        cent_dists: list[float] = []
        heads: list[int] = []
        for __, head, centroid in self._iter_centroids():
            with prof.section(SEC_DISTANCE):
                cent_dists.append(kernel(query, centroid))
            heads.append(head)
        order = np.argsort(np.asarray(cent_dists), kind="stable")[: max(nprobe, 1)]

        with prof.section(SEC_TUPLE_ACCESS):
            tids: list[TID] = []
            for bucket in order.tolist():
                self._gather_bucket(heads[bucket], tids)
        self.scan_stats.scans += 1
        self.scan_stats.candidates += len(tids)
        if not tids:
            return ScanBatch.empty()
        with prof.section(SEC_HEAP_FETCH):
            columns = self.table.fetch_column_many_any(tids, self.column_index)
            if any(c is None for c in columns):
                # Entries lagging a completed heap VACUUM: drop them.
                tids = [t for t, c in zip(tids, columns) if c is not None]
                columns = [c for c in columns if c is not None]
            if not tids:
                return ScanBatch.empty()
            vectors = np.asarray(columns, dtype=np.float32)
        with prof.section(SEC_DISTANCE):
            dists = rows(query, vectors)
        with prof.section(SEC_HEAP):
            keys = np.asarray([_tid_key(tid) for tid in tids], dtype=np.int64)
            return topk_batch(keys, dists, k)

    # ------------------------------------------------------------------
    # in-filter search (amsearch_filtered)
    # ------------------------------------------------------------------
    def amsearch_filtered(
        self, query: np.ndarray, k: int, mask_fn: Any
    ) -> Iterator[tuple[TID, float]]:
        """In-filter scan: the mask runs on the bucket's bare TIDs, so
        rejected candidates skip the per-candidate heap-table fetch —
        the dominant cost of this TID-only layout."""
        if self.dim is None:
            raise RuntimeError("index has not been built")
        prof = self.profiler
        query = np.ascontiguousarray(query, dtype=np.float32)
        kernel = pairwise_kernel(self.opts.distance_type)

        cent_dists: list[float] = []
        heads: list[int] = []
        for __, head, centroid in self._iter_centroids():
            with prof.section(SEC_DISTANCE):
                cent_dists.append(kernel(query, centroid))
            heads.append(head)
        order = np.argsort(np.asarray(cent_dists), kind="stable")

        def score(tid: TID) -> float | None:
            with prof.section(SEC_HEAP_FETCH):
                vec = self.table.fetch_column_any(tid, self.column_index)
            if vec is None:
                return None
            with prof.section(SEC_DISTANCE):
                return kernel(query, np.asarray(vec, dtype=np.float32))

        return iter(
            ivf_filtered_scan(
                self,
                k,
                mask_fn,
                order.tolist(),
                heads,
                lambda head: ((tid, tid) for tid in self._iter_bucket(head)),
                score,
            )
        )

    def amestimate_candidates(self, ntuples: float, fetch_k: int) -> float:
        """Candidates the in-filter mask must judge (probed share of n)."""
        n = max(float(ntuples), 1.0)
        clusters = max(1.0, min(float(self.opts.clusters), n))
        nprobe = float(min(max(int(self.catalog.get_setting("pase.nprobe")), 1), int(clusters)))
        return n * (nprobe / clusters)

    # ------------------------------------------------------------------
    # planner cost estimate
    # ------------------------------------------------------------------
    def amcostestimate(self, ntuples: float, fetch_k: int, cost: Any) -> tuple[float, float]:
        """IVF cost where buckets store bare TIDs: every probed
        candidate pays an extra heap-tuple fetch for its vector before
        the distance (pgvector's layout, vs PASE's vector-in-index)."""
        n = max(float(ntuples), 1.0)
        clusters = max(1.0, min(float(self.opts.clusters), n))
        nprobe = float(min(max(int(self.catalog.get_setting("pase.nprobe")), 1), int(clusters)))
        candidates = n * (nprobe / clusters)
        total = clusters * DISTANCE_OP_WEIGHT * cost.cpu_operator_cost
        total += candidates * (
            cost.cpu_index_tuple_cost
            + cost.cpu_tuple_cost
            + DISTANCE_OP_WEIGHT * cost.cpu_operator_cost
        )
        return total, total

    # ------------------------------------------------------------------
    # page iteration
    # ------------------------------------------------------------------
    def _iter_centroids(self) -> Iterator[tuple[int, int, np.ndarray]]:
        rel = self.relation_name("centroid")
        prof = self.profiler
        for blkno in range(self.buffer.disk.n_blocks(rel)):
            frame = self.buffer.pin(rel, blkno)
            try:
                page = frame.page
                for off in range(1, page.item_count + 1):
                    with prof.section(SEC_TUPLE_ACCESS):
                        view = page.get_item_view(off)
                        cent_id, head = _CENTROID_HEAD.unpack_from(view, 0)
                        vec = np.frombuffer(view, dtype=np.float32, offset=_CENTROID_HEAD.size)
                    yield cent_id, head, vec
            finally:
                self.buffer.unpin(frame)

    def _gather_bucket(self, head: int, out: list[TID]) -> None:
        """Append one bucket's TIDs to ``out``, one pin per chain page.

        Data tuples are fixed-size (8-byte TID records) on append-only
        pages, so each page decodes with one reinterpreting view; the
        line-pointer walk remains as a defensive fallback.
        """
        rel = self.relation_name("data")
        item_size = _TID_TUPLE.size
        blkno = head
        while blkno != _NO_BLOCK:
            frame = self.buffer.pin(rel, blkno)
            try:
                page = frame.page
                n = page.item_count
                upper = page.upper
                if n and page.special - upper == n * item_size:
                    words = np.frombuffer(
                        page.buf, dtype="<u4", count=n * 2, offset=upper
                    ).reshape(n, 2)
                    blks = words[:, 0].tolist()
                    offs = (words[:, 1] & 0xFFFF).tolist()
                    out.extend(TID(b, o) for b, o in zip(blks, offs))
                else:
                    for off in range(1, n + 1):
                        heap_blk, heap_off = _TID_TUPLE.unpack_from(
                            page.get_item_view(off), 0
                        )
                        out.append(TID(heap_blk, heap_off))
                (blkno,) = _NEXT.unpack(page.read_special())
            finally:
                self.buffer.unpin(frame)

    def _iter_bucket(self, head: int) -> Iterator[TID]:
        rel = self.relation_name("data")
        prof = self.profiler
        blkno = head
        while blkno != _NO_BLOCK:
            frame = self.buffer.pin(rel, blkno)
            try:
                page = frame.page
                for off in range(1, page.item_count + 1):
                    with prof.section(SEC_TUPLE_ACCESS):
                        view = page.get_item_view(off)
                        heap_blk, heap_off = _TID_TUPLE.unpack_from(view, 0)
                    yield TID(heap_blk, heap_off)
                (blkno,) = _NEXT.unpack(page.read_special())
            finally:
                self.buffer.unpin(frame)

    # ------------------------------------------------------------------
    # centroid tuple updates
    # ------------------------------------------------------------------
    def _centroid_location(self, centroid_id: int) -> tuple[int, int]:
        assert self._centroids_per_page is not None
        return (
            centroid_id // self._centroids_per_page,
            centroid_id % self._centroids_per_page + 1,
        )

    def _bucket_head(self, centroid_id: int) -> int:
        blkno, off = self._centroid_location(centroid_id)
        with self.buffer.page(self.relation_name("centroid"), blkno) as page:
            return _CENTROID_HEAD.unpack_from(page.get_item_view(off), 0)[1]

    def _set_bucket_head(self, centroid_id: int, head: int) -> None:
        blkno, off = self._centroid_location(centroid_id)
        frame = self.buffer.pin(self.relation_name("centroid"), blkno)
        try:
            struct.pack_into("<I", frame.page.get_item_view(off), 4, head)
        finally:
            self.buffer.unpin(frame, dirty=True)

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    def relations(self) -> list[str]:
        """Page-file names owned by this index."""
        return [self.relation_name(f) for f in ("centroid", "data")]

    def size_info(self) -> IndexSizeInfo:
        page_size = self.buffer.disk.page_size
        detail: dict[str, int] = {}
        pages = 0
        used = 0
        for fork in ("centroid", "data"):
            rel = self.relation_name(fork)
            if not self.buffer.disk.relation_exists(rel):
                continue
            n = self.buffer.disk.n_blocks(rel)
            pages += n
            detail[f"{fork}_pages"] = n
            for blkno in range(n):
                with self.buffer.page(rel, blkno) as page:
                    for off in page.live_items():
                        used += len(page.get_item_view(off))
        return IndexSizeInfo(
            allocated_bytes=pages * page_size,
            used_bytes=used,
            page_count=pages,
            detail=detail,
        )
