"""Command-line entry point: ``repro-bench`` / ``python -m repro.bench``.

Examples::

    repro-bench --list
    repro-bench --experiment fig3
    repro-bench --experiment fig14 --scale 0.002
    repro-bench --all
    repro-bench trend --baseline benchmarks/results --current bench-results
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    """CLI driver; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trend":
        # Subcommand: benchmark trend gate (see repro.bench.trend).
        from repro.bench.trend import main as trend_main

        return trend_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the figures/tables of the PASE-vs-Faiss ICDE'24 study.",
    )
    parser.add_argument(
        "--experiment",
        "-e",
        action="append",
        default=None,
        help="experiment id (repeatable), e.g. fig3, tab5, ablation",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="dataset scale relative to the paper's sizes (default: profile scale)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for exp_id in EXPERIMENTS:
            print(exp_id)
        return 0

    if args.all:
        targets = list(EXPERIMENTS)
    elif args.experiment:
        targets = args.experiment
    else:
        parser.print_help()
        return 2

    for exp_id in targets:
        start = time.perf_counter()
        try:
            result = run_experiment(exp_id, scale=args.scale)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - start
        print(result)
        print(f"\n[{exp_id} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    raise SystemExit(main())
