"""Command-line entry point: ``repro-bench`` / ``python -m repro.bench``.

Examples::

    repro-bench --list
    repro-bench --experiment fig3
    repro-bench --experiment fig14 --scale 0.002
    repro-bench --all
    repro-bench trend --baseline benchmarks/results --current bench-results
    repro-bench metrics --out bench-results/metrics.prom
    repro-bench report --out bench-results/REPORT_demo.txt
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    """CLI driver; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trend":
        # Subcommand: benchmark trend gate (see repro.bench.trend).
        from repro.bench.trend import main as trend_main

        return trend_main(argv[1:])
    if argv and argv[0] == "metrics":
        return _metrics_main(argv[1:])
    if argv and argv[0] == "report":
        return _report_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the figures/tables of the PASE-vs-Faiss ICDE'24 study.",
    )
    parser.add_argument(
        "--experiment",
        "-e",
        action="append",
        default=None,
        help="experiment id (repeatable), e.g. fig3, tab5, ablation",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="dataset scale relative to the paper's sizes (default: profile scale)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for exp_id in EXPERIMENTS:
            print(exp_id)
        return 0

    if args.all:
        targets = list(EXPERIMENTS)
    elif args.experiment:
        targets = args.experiment
    else:
        parser.print_help()
        return 2

    for exp_id in targets:
        start = time.perf_counter()
        try:
            result = run_experiment(exp_id, scale=args.scale)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - start
        print(result)
        print(f"\n[{exp_id} completed in {elapsed:.1f}s]\n")
    return 0


def _metrics_main(argv: list[str]) -> int:
    """``repro-bench metrics``: exercise a tiny workload and scrape it.

    Runs a small vector workload with every live-observability surface
    enabled (statement logging, auto_explain, recall probes), scrapes
    the database's Prometheus exposition, validates it with the strict
    parser, and prints it (or writes it with ``--out``).  CI runs this
    once per build to prove the scrape endpoint stays parseable.
    """
    import random

    from repro.common.metrics_export import parse_exposition
    from repro.pgsim.database import PgSimDatabase

    parser = argparse.ArgumentParser(
        prog="repro-bench metrics",
        description="Scrape a demo workload's metrics in Prometheus text format.",
    )
    parser.add_argument("--out", default=None, help="write the exposition to this file")
    parser.add_argument("--rows", type=int, default=200, help="demo table size")
    parser.add_argument("--dim", type=int, default=16, help="vector dimensionality")
    parser.add_argument("--queries", type=int, default=20, help="top-k queries to run")
    args = parser.parse_args(argv)

    rng = random.Random(42)
    db = PgSimDatabase()
    db.execute("CREATE TABLE metrics_demo (id int, v float[])")
    for i in range(args.rows):
        vec = "[" + ",".join(f"{rng.random():.5f}" for _ in range(args.dim)) + "]"
        db.execute(f"INSERT INTO metrics_demo VALUES ({i}, '{vec}')")
    db.execute(
        "CREATE INDEX metrics_demo_idx ON metrics_demo "
        "USING pase_ivfflat (v) WITH (clustering_sample_ratio = 1)"
    )
    db.execute("SET vector_quality_probe_rate = 0.5")
    db.execute("SET log_min_duration_statement = 0")
    for __ in range(args.queries):
        q = "[" + ",".join(f"{rng.random():.5f}" for _ in range(args.dim)) + "]"
        db.query(f"SELECT id FROM metrics_demo ORDER BY v <-> '{q}' LIMIT 10")
    db.execute("DELETE FROM metrics_demo WHERE id < 20")
    db.execute("VACUUM metrics_demo")

    text = db.metrics_text()
    exposition = parse_exposition(text)  # raises on malformed output
    if args.out:
        from pathlib import Path

        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text)
        print(f"wrote {len(exposition.samples)} samples to {out}")
    else:
        sys.stdout.write(text)
    return 0


def _report_main(argv: list[str]) -> int:
    """``repro-bench report``: run a demo workload and print its report.

    Exercises the full time-series surface — ASH sampling, stat-history
    ticks, estimation probes, slow-query logging, recall probes — over
    a small vector workload, then renders the one-page workload report
    (see :mod:`repro.bench.report`).  Sampling is driven manually
    (``sample_once``/``tick``) instead of by the background thread so
    the demo is deterministic and fast.
    """
    import random

    from repro.bench.report import build_report
    from repro.pgsim.database import PgSimDatabase

    parser = argparse.ArgumentParser(
        prog="repro-bench report",
        description="Render a demo workload's observability report.",
    )
    parser.add_argument("--out", default=None, help="write the report to this file")
    parser.add_argument("--rows", type=int, default=200, help="demo table size")
    parser.add_argument("--dim", type=int, default=16, help="vector dimensionality")
    parser.add_argument("--queries", type=int, default=20, help="top-k queries to run")
    args = parser.parse_args(argv)

    rng = random.Random(42)
    db = PgSimDatabase()
    db.execute("CREATE TABLE report_demo (id int, v float[])")
    for i in range(args.rows):
        vec = "[" + ",".join(f"{rng.random():.5f}" for _ in range(args.dim)) + "]"
        db.execute(f"INSERT INTO report_demo VALUES ({i}, '{vec}')")
    db.execute(
        "CREATE INDEX report_demo_idx ON report_demo "
        "USING pase_ivfflat (v) WITH (clustering_sample_ratio = 1)"
    )
    db.execute("SET vector_quality_probe_rate = 0.5")
    db.execute("SET estimation_probe_rate = 1.0")
    db.execute("SET log_min_duration_statement = 0")
    db.stat_history.tick()
    with db.session("report-demo") as sess:
        for i in range(args.queries):
            q = "[" + ",".join(f"{rng.random():.5f}" for _ in range(args.dim)) + "]"
            sess.query(f"SELECT id FROM report_demo ORDER BY v <-> '{q}' LIMIT 10")
            sess.query(f"SELECT id FROM report_demo WHERE id < {10 + i}")
            # Deterministic sampling: snapshot between statements so
            # pg_ash/pg_wait_profile have rows without a live sampler.
            db.activity.get(sess.backend_id).begin_statement(
                "select id from report_demo ...", time.time()
            )
            db.ash.sample_once()
            db.activity.get(sess.backend_id).end_statement(False, None)
    db.stat_history.tick()

    text = build_report(db, "demo")
    db.close()
    if args.out:
        from pathlib import Path

        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text)
        print(f"wrote report to {out}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    raise SystemExit(main())
