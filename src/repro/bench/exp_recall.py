"""Recall parity check (the paper's Sec. IV-D premise).

The paper omits recall plots because "the recall rate will be the same
in PASE and Faiss" when both run the same index with the same
parameters.  This experiment validates that premise in the
reproduction: HNSW recall is *bit-identical* (same seeded graph), and
IVF recall matches within the small RC#5 wiggle caused by the two
k-means flavours.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.exp_build import _hnsw_scale
from repro.bench.runner import ExperimentResult, bench_dataset, default_params
from repro.core.report import render_table
from repro.core.study import ComparativeStudy

K = 10
N_QUERIES = 12


def recall_parity(
    scale: float | None = None, datasets: Sequence[str] = ("sift1m", "deep1m")
) -> ExperimentResult:
    """Recall@10 of every index type on both engines."""
    rows = []
    data: dict[str, dict[str, tuple[float, float]]] = {}
    for name in datasets:
        data[name] = {}
        for index_type in ("ivf_flat", "ivf_pq", "hnsw"):
            ds_scale = _hnsw_scale(scale, name) if index_type == "hnsw" else scale
            ds = bench_dataset(name, scale=ds_scale)
            params = default_params(ds, index_type)
            study = ComparativeStudy(ds, index_type, params)
            cmp = study.compare_search(
                k=K,
                nprobe=None if index_type == "hnsw" else 10,
                efs=100 if index_type == "hnsw" else None,
                n_queries=N_QUERIES,
                recall=True,
            )
            data[name][index_type] = (cmp.generalized_recall, cmp.specialized_recall)
            rows.append(
                [
                    name,
                    index_type,
                    f"{cmp.generalized_recall:.3f}",
                    f"{cmp.specialized_recall:.3f}",
                    "exact" if index_type == "hnsw" else "same clusters modulo RC#5",
                ]
            )
    rendered = render_table(
        ["dataset", "index", "PASE recall@10", "Faiss recall@10", "parity"], rows
    )
    return ExperimentResult(
        exp_id="recall",
        title="Recall parity between the engines (Sec. IV-D premise)",
        expected_shape=(
            "recall matches across engines: exactly for HNSW (identical "
            "graphs), within RC#5 noise for the IVF family"
        ),
        rendered=rendered,
        data=data,
    )
