"""Index-construction experiments: Figs. 3-8, 10 and Table III."""

from __future__ import annotations

from typing import Sequence

from repro.bench.runner import (
    ALL_DATASETS,
    HNSW_DATASETS,
    HNSW_SCALE_FACTOR,
    ExperimentResult,
    bench_dataset,
    default_params,
)
from repro.common.datasets import PROFILES
from repro.common.graph import (
    SEC_ADD_LINK,
    SEC_DISTANCE,
    SEC_GREEDY_UPDATE,
    SEC_NEIGHBOR_FETCH,
    SEC_SEARCH_NB_TO_ADD,
    SEC_SHRINK_NB_LIST,
    SEC_TUPLE_ACCESS,
    SEC_VISITED,
)
from repro.common.profiling import Profiler
from repro.core.report import render_breakdown, render_grouped_series
from repro.core.study import ComparativeStudy, GeneralizedVectorDB, SpecializedVectorDB


def _build_series(
    index_type: str,
    datasets: Sequence[str],
    scale: float | None,
    use_sgemm: bool,
) -> tuple[list[str], dict[str, list[float]]]:
    groups: list[str] = []
    series: dict[str, list[float]] = {
        "PASE total": [],
        "PASE train": [],
        "PASE add": [],
        "Faiss total": [],
        "Faiss train": [],
        "Faiss add": [],
    }
    for name in datasets:
        ds = bench_dataset(name, scale=scale)
        params = default_params(ds, index_type)
        params["use_sgemm"] = use_sgemm
        study = ComparativeStudy(ds, index_type, params)
        cmp = study.compare_build()
        groups.append(f"{name}(n={ds.n})")
        series["PASE total"].append(cmp.generalized.total_seconds)
        series["PASE train"].append(cmp.generalized.train_seconds)
        series["PASE add"].append(cmp.generalized.add_seconds)
        series["Faiss total"].append(cmp.specialized.total_seconds)
        series["Faiss train"].append(cmp.specialized.train_seconds)
        series["Faiss add"].append(cmp.specialized.add_seconds)
    return groups, series


def fig03(scale: float | None = None, datasets: Sequence[str] = ALL_DATASETS) -> ExperimentResult:
    """IVF_FLAT construction time, PASE vs Faiss (SGEMM enabled)."""
    groups, series = _build_series("ivf_flat", datasets, scale, use_sgemm=True)
    rendered = render_grouped_series(
        "IVF_FLAT build", groups, series, unit="s", gap_of=("PASE total", "Faiss total")
    )
    return ExperimentResult(
        exp_id="fig3",
        title="IVF_FLAT index construction time",
        expected_shape="PASE 35.0x-84.8x slower; adding phase dominates both systems",
        rendered=rendered,
        data={"groups": groups, "series": series},
    )


def fig04(scale: float | None = None, datasets: Sequence[str] = ALL_DATASETS) -> ExperimentResult:
    """IVF_FLAT construction with SGEMM disabled in Faiss (RC#1 ablation)."""
    groups, series = _build_series("ivf_flat", datasets, scale, use_sgemm=False)
    rendered = render_grouped_series(
        "IVF_FLAT build (no SGEMM)",
        groups,
        series,
        unit="s",
        gap_of=("PASE add", "Faiss add"),
    )
    return ExperimentResult(
        exp_id="fig4",
        title="IVF_FLAT construction with SGEMM disabled in Faiss",
        expected_shape=(
            "adding phases converge (gap ~1x); remaining minor gap is the "
            "k-means implementation difference"
        ),
        rendered=rendered,
        data={"groups": groups, "series": series},
    )


def fig05(scale: float | None = None, datasets: Sequence[str] = ALL_DATASETS) -> ExperimentResult:
    """IVF_PQ construction time, PASE vs Faiss."""
    groups, series = _build_series("ivf_pq", datasets, scale, use_sgemm=True)
    rendered = render_grouped_series(
        "IVF_PQ build", groups, series, unit="s", gap_of=("PASE total", "Faiss total")
    )
    return ExperimentResult(
        exp_id="fig5",
        title="IVF_PQ index construction time",
        expected_shape="PASE 6.5x-20.2x slower, same trend as IVF_FLAT",
        rendered=rendered,
        data={"groups": groups, "series": series},
    )


def fig06(scale: float | None = None, datasets: Sequence[str] = ALL_DATASETS) -> ExperimentResult:
    """IVF_PQ construction with SGEMM disabled in Faiss."""
    groups, series = _build_series("ivf_pq", datasets, scale, use_sgemm=False)
    rendered = render_grouped_series(
        "IVF_PQ build (no SGEMM)",
        groups,
        series,
        unit="s",
        gap_of=("PASE add", "Faiss add"),
    )
    return ExperimentResult(
        exp_id="fig6",
        title="IVF_PQ construction with SGEMM disabled in Faiss",
        expected_shape="gap becomes negligible (k-means/PQ implementation noise only)",
        rendered=rendered,
        data={"groups": groups, "series": series},
    )


def _hnsw_scale(scale: float | None, name: str) -> float:
    base = scale if scale is not None else PROFILES[name].default_scale
    return base * HNSW_SCALE_FACTOR


def fig07(scale: float | None = None, datasets: Sequence[str] = HNSW_DATASETS) -> ExperimentResult:
    """HNSW construction time, PASE vs Faiss (RC#2)."""
    groups: list[str] = []
    series: dict[str, list[float]] = {"PASE": [], "Faiss": []}
    for name in datasets:
        ds = bench_dataset(name, scale=_hnsw_scale(scale, name))
        params = default_params(ds, "hnsw")
        study = ComparativeStudy(ds, "hnsw", params)
        cmp = study.compare_build()
        groups.append(f"{name}(n={ds.n})")
        series["PASE"].append(cmp.generalized.total_seconds)
        series["Faiss"].append(cmp.specialized.total_seconds)
    rendered = render_grouped_series(
        "HNSW build", groups, series, unit="s", gap_of=("PASE", "Faiss")
    )
    return ExperimentResult(
        exp_id="fig7",
        title="HNSW index construction time",
        expected_shape="PASE 1.6x-8.7x slower; cause is buffer-manager indirection (RC#2)",
        rendered=rendered,
        data={"groups": groups, "series": series},
    )


_TAB3_COLUMNS = (
    SEC_SEARCH_NB_TO_ADD,
    SEC_ADD_LINK,
    SEC_GREEDY_UPDATE,
    SEC_SHRINK_NB_LIST,
)

_FIG8_COLUMNS = (
    SEC_DISTANCE,
    SEC_TUPLE_ACCESS,
    SEC_VISITED,
    SEC_NEIGHBOR_FETCH,
)


def _profiled_hnsw_build(scale: float | None, dataset: str) -> dict[str, Profiler]:
    """Build HNSW on both engines with profiling; returns the profiles."""
    ds = bench_dataset(dataset, scale=_hnsw_scale(scale, dataset))
    params = default_params(ds, "hnsw")
    profs = {"PASE": Profiler(), "Faiss": Profiler()}
    study = ComparativeStudy(
        ds,
        "hnsw",
        params,
        generalized=GeneralizedVectorDB(profiler=profs["PASE"]),
        specialized=SpecializedVectorDB(profiler=profs["Faiss"]),
    )
    study.compare_build()
    return profs


def tab03(scale: float | None = None, dataset: str = "sift1m") -> ExperimentResult:
    """HNSW construction-time breakdown (the paper's Table III)."""
    profs = _profiled_hnsw_build(scale, dataset)
    rendered = render_breakdown(
        f"HNSW build on {dataset}",
        {name: prof.breakdown(within=None) for name, prof in profs.items()},
        columns=_TAB3_COLUMNS,
    )
    data = {
        name: {row.name: row.seconds for row in prof.breakdown(within=None)}
        for name, prof in profs.items()
    }
    return ExperimentResult(
        exp_id="tab3",
        title="Time breakdown of HNSW building",
        expected_shape=(
            "SearchNbToAdd dominates both systems (~70-76%), with PASE's "
            "absolute time several times Faiss's"
        ),
        rendered=rendered,
        data=data,
    )


def fig08(scale: float | None = None, dataset: str = "sift1m") -> ExperimentResult:
    """Breakdown inside SearchNbToAdd (the paper's Fig. 8)."""
    profs = _profiled_hnsw_build(scale, dataset)
    rendered = render_breakdown(
        f"SearchNbToAdd on {dataset}",
        {
            name: prof.breakdown(within=SEC_SEARCH_NB_TO_ADD)
            for name, prof in profs.items()
        },
        columns=_FIG8_COLUMNS,
    )
    data = {
        name: {
            row.name: row.seconds
            for row in prof.breakdown(within=SEC_SEARCH_NB_TO_ADD)
        }
        for name, prof in profs.items()
    }
    return ExperimentResult(
        exp_id="fig8",
        title="Time breakdown of SearchNbToAdd",
        expected_shape=(
            "Faiss spends ~80% on fvec_L2sqr; PASE's distance share is small "
            "because Tuple Access / HVTGet / pasepfirst dominate — absolute "
            "distance time is similar on both sides"
        ),
        rendered=rendered,
        data=data,
    )


def fig10(scale: float | None = None, dataset: str = "sift1m") -> ExperimentResult:
    """Build-time gap vs. parameters: c for IVF, bnn for HNSW (Fig. 10).

    The paper sweeps c in {100, 500, 1000} on SIFT1M (n=1e6); we keep
    the same c/sqrt(n) proportions on the scaled dataset.
    """
    ds = bench_dataset(dataset, scale=scale)
    base_c = default_params(ds, "ivf_flat")["clusters"]
    c_values = [max(base_c // 3, 4), base_c, base_c * 2]
    gaps: dict[str, list[float]] = {"IVF_FLAT": [], "IVF_PQ": []}
    for index_type in ("ivf_flat", "ivf_pq"):
        for c in c_values:
            params = default_params(ds, index_type)
            params["clusters"] = c
            cmp = ComparativeStudy(ds, index_type, params).compare_build()
            gaps[index_type.upper()].append(cmp.gap)
    ivf_table = render_grouped_series(
        f"build gap vs c ({dataset})",
        [f"c={c}" for c in c_values],
        gaps,
        unit="x",
    )

    hnsw_ds = bench_dataset(dataset, scale=_hnsw_scale(scale, dataset))
    bnn_values = [8, 16, 32]
    hnsw_gaps: dict[str, list[float]] = {"HNSW": []}
    for bnn in bnn_values:
        params = default_params(hnsw_ds, "hnsw")
        params["bnn"] = bnn
        cmp = ComparativeStudy(hnsw_ds, "hnsw", params).compare_build()
        hnsw_gaps["HNSW"].append(cmp.gap)
    hnsw_table = render_grouped_series(
        f"build gap vs bnn ({dataset})",
        [f"bnn={b}" for b in bnn_values],
        hnsw_gaps,
        unit="x",
    )
    return ExperimentResult(
        exp_id="fig10",
        title="Impact of parameters on construction gap",
        expected_shape="gap grows with c (IVF) and with bnn (HNSW)",
        rendered=ivf_table + "\n\n" + hnsw_table,
        data={"c_values": c_values, "ivf_gaps": gaps, "bnn_values": bnn_values, "hnsw_gaps": hnsw_gaps},
    )
