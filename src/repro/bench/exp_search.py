"""Search-latency experiments: Figs. 2, 14-17, 19 and Table V."""

from __future__ import annotations

from typing import Sequence

from repro.bench.exp_build import _hnsw_scale
from repro.bench.runner import (
    ALL_DATASETS,
    HNSW_DATASETS,
    ExperimentResult,
    bench_dataset,
    default_params,
)
from repro.common.metrics import latency_stats
from repro.common.profiling import Profiler
from repro.core.report import render_breakdown, render_grouped_series
from repro.core.study import ComparativeStudy, GeneralizedVectorDB, SpecializedVectorDB

#: Table V column order.
_TAB5_COLUMNS = ("fvec_L2sqr", "Tuple Access", "Min-heap")

#: paper defaults (Table II), rescaled k for the smaller datasets.
DEFAULT_K = 50
DEFAULT_NPROBE = 20
DEFAULT_EFS = 200
N_QUERIES = 15


def _search_series(
    index_type: str,
    datasets: Sequence[str],
    scale: float | None,
    nprobe: int | None = DEFAULT_NPROBE,
    efs: int | None = None,
    hnsw_scaled: bool = False,
) -> tuple[list[str], dict[str, list[float]], dict[str, list[float]]]:
    groups: list[str] = []
    series: dict[str, list[float]] = {"PASE": [], "Faiss": []}
    recalls: dict[str, list[float]] = {"PASE": [], "Faiss": []}
    for name in datasets:
        ds_scale = _hnsw_scale(scale, name) if hnsw_scaled else scale
        ds = bench_dataset(name, scale=ds_scale)
        params = default_params(ds, index_type)
        study = ComparativeStudy(ds, index_type, params)
        cmp = study.compare_search(
            k=DEFAULT_K, nprobe=nprobe, efs=efs, n_queries=N_QUERIES, recall=True
        )
        groups.append(f"{name}(n={ds.n})")
        series["PASE"].append(cmp.generalized.mean)
        series["Faiss"].append(cmp.specialized.mean)
        recalls["PASE"].append(cmp.generalized_recall)
        recalls["Faiss"].append(cmp.specialized_recall)
    return groups, series, recalls


def fig02(scale: float | None = None, dataset: str = "sift1m") -> ExperimentResult:
    """Generalized systems compared: PASE vs pgvector (the paper's Fig. 2).

    Both run IVF_FLAT with the same parameters on pgsim; pgvector's
    TID-only index pages force one heap fetch per scanned candidate.
    """
    ds = bench_dataset(dataset, scale=scale)
    params = default_params(ds, "ivf_flat")

    systems: dict[str, list[float]] = {}
    for label, am_name in (("PASE", "pase_ivfflat"), ("pgvector", "ivfflat")):
        gen = GeneralizedVectorDB()
        gen.load(ds.base)
        opts = ", ".join(
            f"{k} = {v}" for k, v in params.items() if k in ("clusters", "sample_ratio", "seed")
        )
        gen.db.execute(
            f"CREATE INDEX {gen.index_name} ON {gen.table_name} USING {am_name} (vec) WITH ({opts})"
        )
        info = gen.db.catalog.find_index(gen.index_name)
        assert info is not None
        gen.am = info.am
        latencies = []
        gen.db.execute(f"SET pase.nprobe = {DEFAULT_NPROBE}")
        for q in ds.queries[:N_QUERIES]:
            r = gen.search(q, DEFAULT_K)
            latencies.append(r.elapsed_seconds)
        systems[label] = [latency_stats(latencies).mean]
    rendered = render_grouped_series(
        f"IVF_FLAT search on {dataset}",
        [f"{dataset}(n={ds.n})"],
        systems,
        unit="s",
        gap_of=("pgvector", "PASE"),
    )
    return ExperimentResult(
        exp_id="fig2",
        title="Generalized vector databases compared (PASE vs pgvector)",
        expected_shape="PASE is the fastest generalized system; pgvector trails it",
        rendered=rendered,
        data={"systems": systems},
    )


def fig14(scale: float | None = None, datasets: Sequence[str] = ALL_DATASETS) -> ExperimentResult:
    """IVF_FLAT search time (Fig. 14)."""
    groups, series, recalls = _search_series("ivf_flat", datasets, scale)
    rendered = render_grouped_series(
        "IVF_FLAT search", groups, series, unit="s", gap_of=("PASE", "Faiss")
    )
    return ExperimentResult(
        exp_id="fig14",
        title="Search time for IVF_FLAT",
        expected_shape="PASE 2.0x-3.4x slower (k-means diff, tuple access, n-sized heap)",
        rendered=rendered,
        data={"groups": groups, "series": series, "recalls": recalls},
    )


def tab05(scale: float | None = None, dataset: str = "sift1m") -> ExperimentResult:
    """IVF_FLAT search-time breakdown (the paper's Table V)."""
    ds = bench_dataset(dataset, scale=scale)
    params = default_params(ds, "ivf_flat")
    profs = {"PASE": Profiler(), "Faiss": Profiler()}
    study = ComparativeStudy(
        ds,
        "ivf_flat",
        params,
        generalized=GeneralizedVectorDB(profiler=profs["PASE"]),
        specialized=SpecializedVectorDB(profiler=profs["Faiss"]),
    )
    study.compare_search(k=DEFAULT_K, nprobe=DEFAULT_NPROBE, n_queries=N_QUERIES)
    rendered = render_breakdown(
        f"IVF_FLAT search on {dataset}",
        {name: prof.breakdown(within=None) for name, prof in profs.items()},
        columns=_TAB5_COLUMNS,
    )
    data = {
        name: {row.name: row.seconds for row in prof.breakdown(within=None)}
        for name, prof in profs.items()
    }
    return ExperimentResult(
        exp_id="tab5",
        title="Time breakdown of IVF_FLAT search",
        expected_shape=(
            "Faiss ~95% in fvec_L2sqr; PASE's distance share much lower with "
            "large Tuple Access and Min-heap shares"
        ),
        rendered=rendered,
        data=data,
    )


def fig15(scale: float | None = None, datasets: Sequence[str] = ("sift1m", "deep1m")) -> ExperimentResult:
    """IVF_FLAT search with PASE's centroids transplanted into Faiss (Fig. 15)."""
    groups: list[str] = []
    series: dict[str, list[float]] = {"PASE": [], "Faiss": [], "Faiss*": []}
    for name in datasets:
        ds = bench_dataset(name, scale=scale)
        params = default_params(ds, "ivf_flat")
        study = ComparativeStudy(ds, "ivf_flat", params)
        before = study.compare_search(k=DEFAULT_K, nprobe=DEFAULT_NPROBE, n_queries=N_QUERIES)
        study.transplant_centroids()
        after = study.compare_search(k=DEFAULT_K, nprobe=DEFAULT_NPROBE, n_queries=N_QUERIES)
        groups.append(f"{name}(n={ds.n})")
        series["PASE"].append(before.generalized.mean)
        series["Faiss"].append(before.specialized.mean)
        series["Faiss*"].append(after.specialized.mean)
    rendered = render_grouped_series(
        "IVF_FLAT search with replaced centroids",
        groups,
        series,
        unit="s",
        gap_of=("PASE", "Faiss*"),
    )
    return ExperimentResult(
        exp_id="fig15",
        title="IVF_FLAT search with replaced centroids (Faiss*)",
        expected_shape="gap PASE/Faiss* smaller than PASE/Faiss (RC#5 isolated)",
        rendered=rendered,
        data={"groups": groups, "series": series},
    )


def fig16(scale: float | None = None, datasets: Sequence[str] = ALL_DATASETS) -> ExperimentResult:
    """IVF_PQ search time (Fig. 16)."""
    groups, series, recalls = _search_series("ivf_pq", datasets, scale)
    rendered = render_grouped_series(
        "IVF_PQ search", groups, series, unit="s", gap_of=("PASE", "Faiss")
    )
    return ExperimentResult(
        exp_id="fig16",
        title="Search time for IVF_PQ",
        expected_shape="PASE 3.9x-11.2x slower; precomputed table (RC#7) adds to the gap",
        rendered=rendered,
        data={"groups": groups, "series": series, "recalls": recalls},
    )


def fig17(scale: float | None = None, datasets: Sequence[str] = HNSW_DATASETS) -> ExperimentResult:
    """HNSW search time (Fig. 17)."""
    groups, series, recalls = _search_series(
        "hnsw", datasets, scale, nprobe=None, efs=DEFAULT_EFS, hnsw_scaled=True
    )
    rendered = render_grouped_series(
        "HNSW search", groups, series, unit="s", gap_of=("PASE", "Faiss")
    )
    return ExperimentResult(
        exp_id="fig17",
        title="Search time for HNSW",
        expected_shape="PASE 2.2x-7.3x slower; gap is almost entirely tuple access (RC#2)",
        rendered=rendered,
        data={"groups": groups, "series": series, "recalls": recalls},
    )


def fig19(scale: float | None = None, dataset: str = "sift1m") -> ExperimentResult:
    """Search gap vs. nprobe (IVF) and efs (HNSW) — the paper's Fig. 19."""
    ds = bench_dataset(dataset, scale=scale)
    nprobes = [10, 20, 50]
    gaps: dict[str, list[float]] = {"IVF_FLAT": [], "IVF_PQ": []}
    for index_type in ("ivf_flat", "ivf_pq"):
        params = default_params(ds, index_type)
        study = ComparativeStudy(ds, index_type, params)
        study.compare_build()
        for nprobe in nprobes:
            cmp = study.compare_search(k=DEFAULT_K, nprobe=nprobe, n_queries=N_QUERIES)
            gaps[index_type.upper()].append(cmp.gap)
    ivf_table = render_grouped_series(
        f"search gap vs nprobe ({dataset})",
        [f"nprobe={p}" for p in nprobes],
        gaps,
        unit="x",
    )

    hnsw_ds = bench_dataset(dataset, scale=_hnsw_scale(scale, dataset))
    efs_values = [16, 100, 200]
    hnsw_gaps: dict[str, list[float]] = {"HNSW": []}
    params = default_params(hnsw_ds, "hnsw")
    study = ComparativeStudy(hnsw_ds, "hnsw", params)
    study.compare_build()
    for efs in efs_values:
        cmp = study.compare_search(k=min(DEFAULT_K, efs), nprobe=None, efs=efs, n_queries=N_QUERIES)
        hnsw_gaps["HNSW"].append(cmp.gap)
    hnsw_table = render_grouped_series(
        f"search gap vs efs ({dataset})",
        [f"efs={e}" for e in efs_values],
        hnsw_gaps,
        unit="x",
    )
    return ExperimentResult(
        exp_id="fig19",
        title="Impact of parameters on the search gap",
        expected_shape=(
            "IVF_FLAT gap roughly flat in nprobe; IVF_PQ gap grows with "
            "nprobe; HNSW gap grows with efs"
        ),
        rendered=ivf_table + "\n\n" + hnsw_table,
        data={"nprobes": nprobes, "ivf_gaps": gaps, "efs": efs_values, "hnsw_gaps": hnsw_gaps},
    )
