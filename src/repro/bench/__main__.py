"""``python -m repro.bench`` delegates to the CLI."""

from repro.bench.cli import main

raise SystemExit(main())
