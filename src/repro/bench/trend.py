"""Benchmark trend analysis: diff two directories of BENCH_*.json.

The CI regression gate: every benchmark emits a ``BENCH_<w>.json``
through :func:`repro.common.obs.write_bench_json` (schema
``repro-bench/v1``), committed baselines live in
``benchmarks/results/``, and ``repro-bench trend`` compares a fresh
run against them.  A latency metric that grew by more than the
threshold (default 25%) fails the gate.

Only latency metrics gate (``mean_ms``/``p50_ms``; tail percentiles
are too noisy at smoke scale) and only workloads present on *both*
sides are compared — a new benchmark can land together with its
baseline without tripping the gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.common.obs import BENCH_SCHEMA

#: Latency metrics compared by the gate, in report order.
GATED_METRICS = ("mean_ms", "p50_ms")

#: Default allowed relative growth before a metric is a regression.
DEFAULT_THRESHOLD = 0.25

#: Ignore metric movement below this many milliseconds: at smoke-bench
#: scale a sub-0.05 ms jitter can be a large *relative* change while
#: meaning nothing.
MIN_ABS_DELTA_MS = 0.05


@dataclass(slots=True)
class MetricDelta:
    """One gated metric compared across baseline and current."""

    workload: str
    metric: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline > 0 else float("inf")

    def regressed(self, threshold: float) -> bool:
        if self.current - self.baseline < MIN_ABS_DELTA_MS:
            return False
        return self.current > self.baseline * (1.0 + threshold)


@dataclass(slots=True)
class TrendReport:
    """Outcome of one baseline-vs-current comparison."""

    deltas: list[MetricDelta]
    threshold: float
    only_baseline: list[str]  #: workloads missing from the current run
    only_current: list[str]  #: new workloads without a baseline
    #: Per-workload diagnostic lines (slow queries captured by the
    #: current run); rendered under a workload's REGRESSION line.
    context: dict[str, list[str]]

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed(self.threshold)]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"benchmark trend: {len(self.deltas)} gated metrics, "
            f"threshold +{self.threshold * 100:.0f}%"
        ]
        shown: set[str] = set()
        for d in sorted(self.deltas, key=lambda d: d.ratio, reverse=True):
            regressed = d.regressed(self.threshold)
            flag = "REGRESSION" if regressed else "ok"
            lines.append(
                f"  {d.workload:<28} {d.metric:<8} "
                f"{d.baseline:9.3f} -> {d.current:9.3f} ms "
                f"({d.ratio:5.2f}x)  {flag}"
            )
            if regressed and d.workload not in shown:
                shown.add(d.workload)
                lines.extend(f"      {note}" for note in self.context.get(d.workload, ()))
        if self.only_current:
            lines.append(f"  new workloads (no baseline): {', '.join(self.only_current)}")
        if self.only_baseline:
            lines.append(f"  missing from current run: {', '.join(self.only_baseline)}")
        lines.append(
            "trend: OK" if self.ok else f"trend: {len(self.regressions)} regression(s)"
        )
        return "\n".join(lines)


def _slow_query_notes(doc: dict) -> list[str]:
    """Diagnostic lines from a BENCH doc's ``extra.slow_queries``.

    Benches that run with statement logging on attach their slowest
    captured statements (query, elapsed, top RC bucket); a regressed
    workload renders them so the gate's failure output already points
    at *which* statement got slow, not just that one did.
    """
    entries = (doc.get("extra") or {}).get("slow_queries")
    if not isinstance(entries, list):
        return []
    notes = []
    for entry in entries[:3]:
        if not isinstance(entry, dict):
            continue
        query = str(entry.get("query", "?"))
        if len(query) > 60:
            query = query[:57] + "..."
        note = f"slow: {query}  {float(entry.get('elapsed_ms', 0.0)):.3f} ms"
        rc_top = entry.get("rc_top")
        if rc_top:
            note += f"  [{rc_top}]"
        notes.append(note)
    return notes


def load_bench_dir(directory: str | Path) -> dict[str, dict]:
    """Read every ``BENCH_*.json`` in a directory, keyed by workload.

    Files that do not parse or carry a different schema are skipped —
    the gate must not fail on stray artifacts.
    """
    docs: dict[str, dict] = {}
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(doc, dict) or doc.get("schema") != BENCH_SCHEMA:
            continue
        workload = doc.get("workload") or path.stem.removeprefix("BENCH_")
        docs[workload] = doc
    return docs


def compare(
    baseline_dir: str | Path,
    current_dir: str | Path,
    threshold: float = DEFAULT_THRESHOLD,
) -> TrendReport:
    """Compare two benchmark-result directories workload by workload."""
    baseline = load_bench_dir(baseline_dir)
    current = load_bench_dir(current_dir)
    deltas: list[MetricDelta] = []
    for workload in sorted(baseline.keys() & current.keys()):
        base_lat = baseline[workload].get("latency") or {}
        cur_lat = current[workload].get("latency") or {}
        for metric in GATED_METRICS:
            b, c = base_lat.get(metric), cur_lat.get(metric)
            if isinstance(b, (int, float)) and isinstance(c, (int, float)):
                deltas.append(
                    MetricDelta(
                        workload=workload,
                        metric=metric,
                        baseline=float(b),
                        current=float(c),
                    )
                )
    context = {
        workload: notes
        for workload, doc in current.items()
        if (notes := _slow_query_notes(doc))
    }
    return TrendReport(
        deltas=deltas,
        threshold=threshold,
        only_baseline=sorted(baseline.keys() - current.keys()),
        only_current=sorted(current.keys() - baseline.keys()),
        context=context,
    )


def main(argv: list[str] | None = None) -> int:
    """``repro-bench trend`` driver; returns a process exit code."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-bench trend",
        description="Diff BENCH_*.json latency metrics against a baseline directory.",
    )
    parser.add_argument("--baseline", required=True, help="directory of baseline BENCH_*.json")
    parser.add_argument("--current", required=True, help="directory of current BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed relative latency growth (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    report = compare(args.baseline, args.current, threshold=args.threshold)
    print(report.render())
    return 0 if report.ok else 1
