"""Workload report: one human-readable page joining every obs surface.

``build_report`` asks a running database the questions an on-call
engineer would — *what ran, what did it wait on, what drifted over
time, what was slow and why, where did the planner mis-estimate, and
did recall hold* — by issuing plain SQL against the observability
views (``pg_stat_statements``, ``pg_wait_profile``,
``pg_stat_history``, ``pg_slow_queries``,
``pg_stat_estimation_errors``, ``pg_stat_filtered_search``,
``pg_stat_vector_quality``) and
correlating the answers in Python (pgsim SQL has no JOINs; the views
pre-aggregate, the report cross-references).

``write_report`` renders it to ``REPORT_<workload>.txt`` next to the
``BENCH_*.json`` artifacts (``$BENCH_RESULTS_DIR``), where the
concurrent-mixed and churn benches attach it and CI uploads it.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any

#: Rows shown per section — a report is a page, not a dump.
_TOP_N = 8


def _rows(db: Any, view: str) -> list[tuple]:
    """``SELECT * FROM view`` via plain SQL; empty when the view is."""
    return db.query(f"SELECT * FROM {view}")


def _fmt(value: Any, width: int = 0) -> str:
    if value is None:
        text = "-"
    elif isinstance(value, float):
        text = f"{value:.3f}"
    else:
        text = str(value)
    return text.rjust(width) if width else text


def _table(headers: list[str], rows: list[tuple], limit: int = _TOP_N) -> list[str]:
    """Render an aligned text table (shared by every section)."""
    shown = rows[:limit]
    cells = [[_fmt(v) for v in row] for row in shown]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  " + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  " + "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  " + "  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    if len(rows) > limit:
        lines.append(f"  ... {len(rows) - limit} more")
    if not rows:
        lines.append("  (none)")
    return lines


def _shorten(query: str, width: int = 64) -> str:
    return query if len(query) <= width else query[: width - 3] + "..."


def build_report(db: Any, workload: str = "workload") -> str:
    """One text page summarizing the database's observability state."""
    statements = _rows(db, "pg_stat_statements")
    wait_profile = _rows(db, "pg_wait_profile")
    history = _rows(db, "pg_stat_history")
    slow = _rows(db, "pg_slow_queries")
    estimation = _rows(db, "pg_stat_estimation_errors")
    strategies = _rows(db, "pg_stat_filtered_search")
    quality = _rows(db, "pg_stat_vector_quality")
    ash_samples = _rows(db, "pg_ash")

    # Python-side correlation (no SQL joins): per-query call counts
    # let later sections annotate how hot a mis-estimated or slow
    # statement actually was.
    calls_by_query = {row[0]: row[1] for row in statements}

    out: list[str] = []
    out.append(f"=== pgsim workload report: {workload} ===")
    out.append(
        f"generated {time.strftime('%Y-%m-%d %H:%M:%S')} | "
        f"{len(ash_samples)} ASH samples | {len(history)} stat-history rows | "
        f"{len(statements)} distinct statements"
    )
    out.append("")

    out.append("-- top statements by total time (pg_stat_statements) --")
    by_time = sorted(statements, key=lambda r: r[3], reverse=True)
    out.extend(
        _table(
            ["query", "calls", "rows", "total_ms", "mean_ms", "p95_ms"],
            [(_shorten(r[0]), r[1], r[2], r[3], r[4], r[6]) for r in by_time],
        )
    )
    out.append("")

    out.append("-- wait profile from active session history (pg_wait_profile) --")
    out.extend(
        _table(
            ["query", "type", "event", "samples", "share"],
            [(_shorten(r[0], 48), r[1], r[2], r[3], r[4]) for r in wait_profile],
        )
    )
    out.append("")

    out.append("-- counter movement over the sampled window (pg_stat_history) --")
    # Sum the per-tick deltas per (metric, label): total movement across
    # the retained window, most active first.
    movement: dict[tuple[str, str], float] = {}
    window = 0.0
    for _, metric, label, _, delta, window_seconds in history:
        movement[(metric, label)] = movement.get((metric, label), 0.0) + delta
        window += window_seconds
    moved = sorted(
        ((m, lbl, total) for (m, lbl), total in movement.items() if total),
        key=lambda r: -abs(r[2]),
    )
    out.extend(_table(["metric", "label", "delta_over_window"], moved))
    if history:
        out.append(f"  (window ~{window / max(1, len(movement)):.1f}s of ticks retained)")
    out.append("")

    out.append("-- slowest statements (pg_slow_queries) --")
    out.extend(
        _table(
            ["query", "elapsed_ms", "rows", "calls_total", "rc_top"],
            [
                (_shorten(r[4], 48), r[5], r[6], calls_by_query.get(r[4]), r[7])
                for r in slow
            ],
            limit=5,
        )
    )
    out.append("")

    out.append("-- planner estimate vs actual (pg_stat_estimation_errors) --")
    out.extend(
        _table(
            ["query", "node", "est_rows", "actual_rows", "max_q_error", "calls_total"],
            [
                (_shorten(r[0], 40), r[1], r[3], r[4], r[6], calls_by_query.get(r[0]))
                for r in estimation
            ],
        )
    )
    worst = max((r[6] for r in estimation), default=None)
    if worst is not None:
        verdict = (
            "estimates track actuals"
            if worst < 4
            else "planner mis-estimates present (q-error >= 4)"
        )
        out.append(f"  worst q-error {worst:.2f} -> {verdict}")
    out.append("")

    out.append("-- filtered-search strategies (pg_stat_filtered_search) --")
    out.extend(
        _table(
            ["strategy", "chosen", "fallbacks", "est_sel", "actual_sel"],
            strategies,
        )
    )
    fallbacks = sum(r[2] for r in strategies)
    if fallbacks:
        out.append(
            f"  {fallbacks} over-fetch fallback(s) -> post-filter hit "
            "max_filtered_overfetch; check predicate selectivity estimates"
        )
    out.append("")

    out.append("-- online recall quality (pg_stat_vector_quality) --")
    out.extend(
        _table(
            ["index", "am", "probes", "mean_recall", "min_recall", "last_recall"],
            quality,
        )
    )
    out.append("")
    return "\n".join(out) + "\n"


def write_report(
    db: Any, workload: str, out_dir: str | os.PathLike | None = None
) -> Path:
    """Write ``REPORT_<workload>.txt`` and return its path.

    Defaults to ``$BENCH_RESULTS_DIR`` (falling back to the working
    directory) — the same resolution as ``write_bench_json``, so the
    report lands next to the bench's JSON artifact.
    """
    if out_dir is None:
        out_dir = os.environ.get("BENCH_RESULTS_DIR", ".")
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"REPORT_{workload}.txt"
    path.write_text(build_report(db, workload))
    return path
