"""Experiment registry: one entry per paper figure/table."""

from __future__ import annotations

from typing import Any, Callable

from repro.bench import exp_ablation, exp_build, exp_parallel, exp_recall, exp_search, exp_size
from repro.bench.runner import ExperimentResult

#: experiment id -> function(scale=None, **kwargs) -> ExperimentResult.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig2": exp_search.fig02,
    "fig3": exp_build.fig03,
    "fig4": exp_build.fig04,
    "fig5": exp_build.fig05,
    "fig6": exp_build.fig06,
    "fig7": exp_build.fig07,
    "tab3": exp_build.tab03,
    "fig8": exp_build.fig08,
    "fig9": exp_parallel.fig09,
    "fig10": exp_build.fig10,
    "fig11": exp_size.fig11,
    "fig12": exp_size.fig12,
    "fig13": exp_size.fig13,
    "tab4": exp_size.tab04,
    "fig14": exp_search.fig14,
    "tab5": exp_search.tab05,
    "fig15": exp_search.fig15,
    "fig16": exp_search.fig16,
    "fig17": exp_search.fig17,
    "fig18": exp_parallel.fig18,
    "fig19": exp_search.fig19,
    "ablation": exp_ablation.ablation,
    "recall": exp_recall.recall_parity,
}


def run_experiment(exp_id: str, **kwargs: Any) -> ExperimentResult:
    """Run one registered experiment by id.

    Raises:
        KeyError: with the known ids listed.
    """
    key = exp_id.lower()
    if key not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}")
    return EXPERIMENTS[key](**kwargs)
