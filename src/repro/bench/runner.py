"""Experiment plumbing: measurement protocol, defaults, result records.

The paper's protocol (Sec. IV-A): warm up once so data and index are
memory-resident, then average three timed runs.  :func:`timed` applies
it to any callable.  :func:`default_params` derives per-dataset index
parameters from the paper's Table II, rescaled to the synthetic
dataset sizes (documented in DESIGN.md §2).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.datasets import PROFILES, Dataset, load_dataset

#: Datasets used by default for quantization-index experiments — all
#: six, in the paper's order.
ALL_DATASETS = ("sift1m", "gist1m", "deep1m", "sift10m", "deep10m", "turing10m")

#: Graph builds are the slowest part of the harness; HNSW experiments
#: default to the three 1M-class datasets, like the paper's Table IV.
HNSW_DATASETS = ("sift1m", "gist1m", "deep1m")

#: Extra shrink factor applied to HNSW experiments (page-store builds
#: are tuple-at-a-time and dominate harness wall-clock).
HNSW_SCALE_FACTOR = 0.4


@dataclass(slots=True)
class ExperimentResult:
    """Output of one experiment run."""

    exp_id: str
    title: str
    expected_shape: str
    rendered: str
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"== {self.exp_id}: {self.title} ==\n"
            f"paper shape: {self.expected_shape}\n\n{self.rendered}"
        )


def timed(fn: Callable[[], Any], repeats: int = 3, warmup: int = 1) -> tuple[float, Any]:
    """Run the paper's warm-up + average protocol on ``fn``.

    Returns ``(mean seconds, last return value)``.
    """
    result = None
    for __ in range(warmup):
        result = fn()
    total = 0.0
    for __ in range(repeats):
        start = time.perf_counter()
        result = fn()
        total += time.perf_counter() - start
    return total / repeats, result


def bench_dataset(name: str, scale: float | None = None, seed: int = 0) -> Dataset:
    """Load one synthetic dataset at bench scale."""
    return load_dataset(name, scale=scale, seed=seed)


def default_params(dataset: Dataset, index_type: str) -> dict[str, Any]:
    """Table II defaults, rescaled to the dataset's synthetic size.

    - ``clusters``: sqrt(n), the paper's convention for its 10M sets.
    - ``sample_ratio``: large enough that the k-means sample has a few
      rows per centroid (the paper's 0.01 of 1M ~ 10 rows/centroid).
    - ``m``: the paper's per-dataset value (divides the true dim).
    - ``c_pq``: 64 instead of 256 — scaled with the training sample
      the same way the paper's 256 relates to its 10k-row samples.
    """
    clusters = max(int(round(math.sqrt(dataset.n))), 4)
    # Keep the paper's train-vs-add proportions: the paper trains on
    # ~1% of the corpus (10 samples/centroid at its sizes); we keep a
    # few samples per centroid so the adding phase dominates, as in
    # Fig. 3.
    sample_rows = min(max(5 * clusters, 280), dataset.n)
    sample_ratio = min(max(sample_rows / dataset.n, 0.001), 1.0)
    params: dict[str, Any] = {"seed": 42}
    if index_type in ("ivf_flat", "ivf_pq"):
        params["clusters"] = clusters
        params["sample_ratio"] = round(sample_ratio, 4)
    if index_type == "ivf_pq":
        profile = PROFILES.get(dataset.name)
        params["m"] = profile.default_m if profile is not None else 8
        params["c_pq"] = 64
    if index_type == "hnsw":
        params["bnn"] = 16
        params["efb"] = 40
    return params
