"""Index-size experiments: Figs. 11-13 and Table IV."""

from __future__ import annotations

from typing import Sequence

from repro.bench.runner import (
    ALL_DATASETS,
    HNSW_DATASETS,
    ExperimentResult,
    bench_dataset,
    default_params,
)
from repro.bench.exp_build import _hnsw_scale
from repro.core.report import render_grouped_series, render_table, format_bytes
from repro.core.study import ComparativeStudy, GeneralizedVectorDB


def _size_series(
    index_type: str, datasets: Sequence[str], scale: float | None, hnsw_scaled: bool = False
) -> tuple[list[str], dict[str, list[float]]]:
    groups: list[str] = []
    series: dict[str, list[float]] = {"PASE": [], "Faiss": []}
    for name in datasets:
        ds_scale = _hnsw_scale(scale, name) if hnsw_scaled else scale
        ds = bench_dataset(name, scale=ds_scale)
        params = default_params(ds, index_type)
        cmp = ComparativeStudy(ds, index_type, params).compare_size()
        groups.append(f"{name}(n={ds.n})")
        series["PASE"].append(float(cmp.generalized.allocated_bytes))
        series["Faiss"].append(float(cmp.specialized.allocated_bytes))
    return groups, series


def fig11(scale: float | None = None, datasets: Sequence[str] = ALL_DATASETS) -> ExperimentResult:
    """IVF_FLAT index size (Fig. 11): nearly identical in both systems."""
    groups, series = _size_series("ivf_flat", datasets, scale)
    rendered = render_grouped_series(
        "IVF_FLAT size", groups, series, unit="bytes", gap_of=("PASE", "Faiss")
    )
    return ExperimentResult(
        exp_id="fig11",
        title="IVF_FLAT index size",
        expected_shape="almost the same in PASE and Faiss (page layout aligns with memory layout)",
        rendered=rendered,
        data={"groups": groups, "series": series},
    )


def fig12(scale: float | None = None, datasets: Sequence[str] = ALL_DATASETS) -> ExperimentResult:
    """IVF_PQ index size (Fig. 12): again nearly identical."""
    groups, series = _size_series("ivf_pq", datasets, scale)
    rendered = render_grouped_series(
        "IVF_PQ size", groups, series, unit="bytes", gap_of=("PASE", "Faiss")
    )
    return ExperimentResult(
        exp_id="fig12",
        title="IVF_PQ index size",
        expected_shape="no significant size difference",
        rendered=rendered,
        data={"groups": groups, "series": series},
    )


def fig13(scale: float | None = None, datasets: Sequence[str] = HNSW_DATASETS) -> ExperimentResult:
    """HNSW index size (Fig. 13): PASE several times larger (RC#4)."""
    groups, series = _size_series("hnsw", datasets, scale, hnsw_scaled=True)
    rendered = render_grouped_series(
        "HNSW size", groups, series, unit="bytes", gap_of=("PASE", "Faiss")
    )
    return ExperimentResult(
        exp_id="fig13",
        title="HNSW index size",
        expected_shape=(
            "PASE 2.9x-13.3x larger: 24-byte neighbor tuples plus one fresh "
            "page per adjacency list"
        ),
        rendered=rendered,
        data={"groups": groups, "series": series},
    )


def tab04(scale: float | None = None, datasets: Sequence[str] = HNSW_DATASETS) -> ExperimentResult:
    """PASE HNSW size at 8 KB vs 4 KB pages (the paper's Table IV)."""
    rows = []
    data: dict[str, dict[int, int]] = {}
    for name in datasets:
        ds = bench_dataset(name, scale=_hnsw_scale(scale, name))
        params = default_params(ds, "hnsw")
        sizes: dict[int, int] = {}
        for page_size in (8192, 4096):
            gen = GeneralizedVectorDB(page_size=page_size)
            gen.load(ds.base)
            gen.create_index("hnsw", **params)
            sizes[page_size] = gen.index_size().allocated_bytes
        data[name] = sizes
        rows.append(
            [
                f"{name}(n={ds.n})",
                format_bytes(sizes[8192]),
                format_bytes(sizes[4096]),
                f"{sizes[8192] / sizes[4096]:.2f}x",
            ]
        )
    rendered = render_table(
        ["dataset", "8KB pages", "4KB pages", "ratio"], rows
    )
    return ExperimentResult(
        exp_id="tab4",
        title="PASE HNSW index size with 8KB/4KB page size",
        expected_shape="halving the page size roughly halves the index (ratio ~2x)",
        rendered=rendered,
        data=data,
    )
