"""Benchmark harness regenerating every figure and table of the paper.

One experiment function per paper artifact (Figs. 2-19, Tables
III-V), all registered in :data:`repro.bench.experiments.EXPERIMENTS`
and runnable via ``python -m repro.bench --experiment fig3`` or the
``repro-bench`` console script.  Each experiment prints the same
rows/series the paper reports, so the output can be compared to the
paper shape by shape (EXPERIMENTS.md records that comparison).
"""

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.runner import ExperimentResult

__all__ = ["EXPERIMENTS", "ExperimentResult", "run_experiment"]
