"""Parallelism experiments: Figs. 9 and 18 (RC#3).

Work is executed for real; wall-clock under t threads comes from the
deterministic scheduler (DESIGN.md §2 explains the substitution).
"""

from __future__ import annotations

from repro.bench.runner import ExperimentResult, bench_dataset, default_params
from repro.common.parallel import speedups
from repro.core.report import render_grouped_series
from repro.core.study import ComparativeStudy, make_specialized_index
from repro.pase import parallel as pase_parallel
from repro.specialized import parallel as spec_parallel

THREADS = [1, 2, 4, 8]


def _ivf_build_scale(scale: float | None, dataset: str) -> float:
    """Fig. 9 needs the adding phase to dominate (as at paper scale),
    so it runs on 6x the usual synthetic size — training cost is fixed
    while adding grows linearly."""
    from repro.common.datasets import PROFILES

    base = scale if scale is not None else PROFILES[dataset].default_scale
    return base * 6


def fig09(scale: float | None = None, dataset: str = "sift1m") -> ExperimentResult:
    """Parallel IVF construction in Faiss, SGEMM on/off (Fig. 9).

    PASE supports no parallel construction, so — like the paper —
    only the specialized engine is swept.
    """
    ds = bench_dataset(dataset, scale=_ivf_build_scale(scale, dataset))
    tables = []
    data: dict[str, dict[int, float]] = {}
    for index_type in ("ivf_flat", "ivf_pq"):
        for use_sgemm in (True, False):
            params = default_params(ds, index_type)
            params["use_sgemm"] = use_sgemm
            index = make_specialized_index(index_type, ds.dim, params)
            index.train(ds.base)
            curve = spec_parallel.simulate_parallel_build(index, ds.base, THREADS)
            label = f"{index_type.upper()} {'with' if use_sgemm else 'no'} SGEMM"
            data[label] = curve
            series = {
                "build time": [curve[t] for t in THREADS],
                "speedup": [curve[1] / curve[t] for t in THREADS],
            }
            tables.append(
                render_grouped_series(
                    label, [f"{t} thr" for t in THREADS], {"build time": series["build time"]}, unit="s"
                )
                + "\n"
                + render_grouped_series(
                    "", [f"{t} thr" for t in THREADS], {"speedup": series["speedup"]}, unit="x"
                )
            )
    return ExperimentResult(
        exp_id="fig9",
        title="Parallel index construction (Faiss), SGEMM enabled/disabled",
        expected_shape=(
            "all configurations scale with threads except IVF_FLAT with "
            "SGEMM, whose adding phase is already too fast to matter"
        ),
        rendered="\n\n".join(tables),
        data=data,
    )


def fig18(scale: float | None = None, dataset: str = "sift1m") -> ExperimentResult:
    """Intra-query parallel search scaling (Fig. 18).

    Faiss partitions buckets across threads with local heaps merged at
    the end; PASE pushes every candidate into one global locked heap.
    """
    ds = bench_dataset(dataset, scale=scale)
    query = ds.queries[0]
    k, nprobe = 50, 20
    tables = []
    data: dict[str, dict[int, float]] = {}
    for index_type in ("ivf_flat", "ivf_pq"):
        params = default_params(ds, index_type)
        study = ComparativeStudy(ds, index_type, params)
        study.compare_build()

        spec_index = study.specialized.index
        assert spec_index is not None
        __, spec_curve = spec_parallel.parallel_search(spec_index, query, k, nprobe, THREADS)
        spec_speedup = speedups(spec_curve)

        pase_am = study.generalized.am
        assert pase_am is not None
        __, pase_curve = pase_parallel.parallel_search(pase_am, query, k, nprobe, THREADS)
        pase_speedup = speedups(pase_curve)

        label = index_type.upper()
        data[f"Faiss {label}"] = spec_speedup
        data[f"PASE {label}"] = pase_speedup
        tables.append(
            render_grouped_series(
                f"{label} intra-query speedup",
                [f"{t} thr" for t in THREADS],
                {
                    "Faiss (local heaps)": [spec_speedup[t] for t in THREADS],
                    "PASE (global locked heap)": [pase_speedup[t] for t in THREADS],
                },
                unit="x",
            )
        )
    return ExperimentResult(
        exp_id="fig18",
        title="Intra-query parallel search scaling",
        expected_shape=(
            "Faiss scales nearly linearly; PASE's global locked heap keeps "
            "its speedup flat"
        ),
        rendered="\n\n".join(tables),
        data=data,
    )
