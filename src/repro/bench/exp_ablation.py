"""Per-root-cause ablation sweep (beyond the paper's figures).

DESIGN.md calls out the toggles the reproduction exposes for each
root cause; this experiment measures how much of the gap each toggle
closes, turning Sec. IX-B's qualitative claims into numbers.
"""

from __future__ import annotations

from repro.bench.runner import ExperimentResult, bench_dataset, default_params
from repro.core.ablation import SWITCHES, run_ablation
from repro.core.report import render_table


def ablation(scale: float | None = None, dataset: str = "sift1m") -> ExperimentResult:
    """Run every togglable root-cause ablation on one dataset."""
    ds = bench_dataset(dataset, scale=scale)
    rows = []
    data = {}
    for cause, switch in SWITCHES.items():
        params = default_params(ds, switch.index_type)
        result = run_ablation(cause, ds, params)
        rows.append(
            [
                f"RC#{cause.value} {cause.name}",
                switch.metric,
                f"{result.gap_with_cause:.2f}x",
                f"{result.gap_without_cause:.2f}x",
                f"{result.gap_closed_fraction * 100:.0f}%",
            ]
        )
        data[cause.name] = {
            "metric": switch.metric,
            "with": result.gap_with_cause,
            "without": result.gap_without_cause,
        }
    rendered = render_table(
        ["root cause", "metric", "gap with", "gap without", "gap closed"], rows
    )
    return ExperimentResult(
        exp_id="ablation",
        title="Root-cause ablation sweep",
        expected_shape=(
            "each toggle reduces its gap: SGEMM closes most of the build "
            "gap; heap/pctable/k-means toggles each shave the search gap"
        ),
        rendered=rendered,
        data=data,
    )
