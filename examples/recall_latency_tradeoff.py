"""Tuning a product-recommendation workload: recall vs latency.

The motivating scenario from the paper's introduction: item
embeddings queried for nearest neighbors ("customers also bought").
This script sweeps each index's quality knob — ``nprobe`` for the IVF
family, ``efs`` for HNSW — on both engines and prints the
recall/latency frontier an application engineer would tune against.

Run:  python examples/recall_latency_tradeoff.py
"""

from repro.common.datasets import load_dataset
from repro.core.report import render_table
from repro.core.study import ComparativeStudy

K = 10
N_QUERIES = 12


def sweep(study: ComparativeStudy, knob: str, values, **fixed) -> list[list[str]]:
    rows = []
    for value in values:
        kwargs = dict(fixed)
        kwargs[knob] = value
        cmp = study.compare_search(k=K, n_queries=N_QUERIES, recall=True, **kwargs)
        rows.append(
            [
                f"{knob}={value}",
                f"{cmp.generalized.mean_ms:.2f}ms",
                f"{cmp.generalized_recall:.3f}",
                f"{cmp.specialized.mean_ms:.2f}ms",
                f"{cmp.specialized_recall:.3f}",
                f"{cmp.gap:.1f}x",
            ]
        )
    return rows


def main() -> None:
    # "Product embeddings": a deep-learning-embedding-shaped corpus.
    dataset = load_dataset("deep1m", scale=2e-3)
    print(f"workload: {dataset.n} item embeddings, {dataset.dim} dims, top-{K}\n")
    headers = ["setting", "PASE latency", "PASE recall", "Faiss latency", "Faiss recall", "gap"]

    print("IVF_FLAT (quality knob: nprobe)")
    flat = ComparativeStudy(
        dataset, "ivf_flat", {"clusters": 45, "sample_ratio": 0.2, "seed": 3}
    )
    flat.compare_build()
    print(render_table(headers, sweep(flat, "nprobe", [2, 5, 10, 20, 45])))

    print("\nIVF_PQ (nprobe again; quantization trades recall for memory)")
    pq = ComparativeStudy(
        dataset,
        "ivf_pq",
        {"clusters": 45, "m": 16, "c_pq": 32, "sample_ratio": 0.4, "seed": 3},
    )
    pq.compare_build()
    print(render_table(headers, sweep(pq, "nprobe", [5, 10, 20, 45])))

    print("\nHNSW (quality knob: efs)")
    hnsw = ComparativeStudy(dataset, "hnsw", {"bnn": 12, "efb": 32, "seed": 3})
    hnsw.compare_build()
    print(render_table(headers, sweep(hnsw, "efs", [10, 25, 50, 100], nprobe=None)))

    print(
        "\nReading the table: the engines hit the same recall at each setting"
        "\n(same algorithm, same parameters) — the latency column is the cost"
        "\nof the relational substrate, and the gap column is the paper."
    )


if __name__ == "__main__":
    main()
