"""The paper's conclusion, executed: bridging the gap inside SQL.

Sec. IX-C sketches how a future generalized vector database could
match a specialized one.  ``repro.bridged`` implements that sketch —
same pgsim SQL surface, but with the buffer manager bypassed on the
hot path (Step#1), SGEMM construction (Step#2), a k-sized heap
(Step#3), local-heap parallelism (Step#4) and the tuned k-means +
optimized layouts (Step#5).

This script races three engines on the same workload:

    PASE (faithful)  ->  bridged (Sec. IX-C)  ->  Faiss (specialized)

Run:  python examples/bridged_engine.py
"""

import time

from repro.common.datasets import load_dataset
from repro.common.parallel import scaling_curve, speedups
from repro.core.report import render_table
from repro.core.study import GeneralizedVectorDB, SpecializedVectorDB

K = 10
NPROBE = 12
PARAMS = "clusters = 45, sample_ratio = 0.2, seed = 7"


def build_generalized(dataset, am_name: str) -> tuple[GeneralizedVectorDB, float]:
    gen = GeneralizedVectorDB()
    gen.load(dataset.base)
    start = time.perf_counter()
    gen.db.execute(
        f"CREATE INDEX vec_idx ON vectors USING {am_name} (vec) WITH ({PARAMS})"
    )
    build = time.perf_counter() - start
    gen.am = gen.db.catalog.find_index("vec_idx").am
    gen.db.execute(f"SET pase.nprobe = {NPROBE}")
    return gen, build


def mean_latency(search, queries) -> float:
    search(queries[0])  # warm-up
    start = time.perf_counter()
    for q in queries:
        search(q)
    return (time.perf_counter() - start) / len(queries)


def main() -> None:
    dataset = load_dataset("sift1m", scale=2e-3)
    queries = dataset.queries[:15]
    print(f"workload: {dataset.n} x {dataset.dim}-dim vectors, top-{K}, nprobe={NPROBE}\n")

    pase, pase_build = build_generalized(dataset, "pase_ivfflat")
    bridged, bridged_build = build_generalized(dataset, "bridged_ivfflat")

    spec = SpecializedVectorDB()
    spec.load(dataset.base)
    start = time.perf_counter()
    spec.create_index("ivf_flat", clusters=45, sample_ratio=0.2, seed=7)
    faiss_build = time.perf_counter() - start

    latencies = {
        "PASE (faithful)": mean_latency(lambda q: pase.search(q, K), queries),
        "bridged (Sec. IX-C)": mean_latency(lambda q: bridged.search(q, K), queries),
        "Faiss (specialized)": mean_latency(
            lambda q: spec.search(q, K, nprobe=NPROBE), queries
        ),
    }
    builds = {
        "PASE (faithful)": pase_build,
        "bridged (Sec. IX-C)": bridged_build,
        "Faiss (specialized)": faiss_build,
    }
    faiss_lat = latencies["Faiss (specialized)"]
    rows = [
        [
            name,
            f"{builds[name] * 1e3:.0f}ms",
            f"{lat * 1e3:.2f}ms",
            f"{lat / faiss_lat:.1f}x",
        ]
        for name, lat in latencies.items()
    ]
    print(render_table(["engine", "build", "search/query", "vs Faiss"], rows))

    # Step#4: the bridged engine's parallel path uses local heaps.
    results, units = bridged.am.parallel_search_units(queries[0], K, NPROBE)
    curve = speedups(scaling_curve(units, [1, 2, 4, 8]))
    print(f"\nbridged 8-thread intra-query speedup (local heaps): {curve[8]:.1f}x")

    # Same SQL surface, same answers.
    lit = ",".join(f"{x:.6f}" for x in queries[0])
    sql = f"SELECT id FROM vectors ORDER BY vec <-> '{lit}'::PASE LIMIT {K}"
    print("\nbridged EXPLAIN:")
    print(bridged.db.explain(sql))
    assert [r[0] for r in bridged.db.query(sql)] == bridged.search(queries[0], K).ids

    print(
        "\nThe bridged engine keeps the relational surface (SQL, WAL, catalog,"
        "\ndurable pages) and still lands within a small factor of the"
        "\nspecialized engine — the paper's 'no fundamental limitation' claim."
    )


if __name__ == "__main__":
    main()
