"""Quickstart: the same vector search on both database architectures.

Loads a synthetic SIFT-like dataset, answers the same top-10 query with

1. the **specialized** engine (Faiss-like, in-memory arrays + SGEMM), and
2. the **generalized** engine (PASE on the pgsim relational engine,
   driven through SQL),

then verifies the answers agree and prints how long each took — a
one-screen version of the paper's whole experiment.

Run:  python examples/quickstart.py
"""

import time

from repro.common.datasets import load_dataset
from repro.core.study import GeneralizedVectorDB
from repro.specialized import SpecializedDatabase


def main() -> None:
    print("Generating a synthetic SIFT-like dataset (scaled-down SIFT1M)...")
    dataset = load_dataset("sift1m", scale=2e-3)
    query = dataset.queries[0]
    truth = dataset.ground_truth(10)[0].tolist()
    print(f"  {dataset.n} vectors, {dataset.dim} dims, exact top-10 = {truth[:5]}...\n")

    # --- specialized engine (Faiss-like) -----------------------------
    spec = SpecializedDatabase()
    spec.create_collection("items", dataset.dim)
    spec.insert("items", dataset.base)
    start = time.perf_counter()
    spec.create_index("items", "ivf_flat", n_clusters=45, sample_ratio=0.2, seed=7)
    build_spec = time.perf_counter() - start
    start = time.perf_counter()
    spec_result = spec.search("items", query, 10, nprobe=12)
    search_spec = time.perf_counter() - start
    print(f"specialized engine: build {build_spec * 1e3:.0f}ms, "
          f"search {search_spec * 1e3:.2f}ms -> {spec_result.ids[:5]}...")

    # --- generalized engine (PASE on pgsim, via SQL) ------------------
    gen = GeneralizedVectorDB()
    gen.load(dataset.base)
    start = time.perf_counter()
    gen.db.execute(
        "CREATE INDEX vec_idx ON vectors USING pase_ivfflat (vec) "
        "WITH (clusters = 45, sample_ratio = 0.2, seed = 7)"
    )
    build_gen = time.perf_counter() - start
    gen.am = gen.db.catalog.find_index("vec_idx").am
    gen.db.execute("SET pase.nprobe = 12")
    vector_literal = ",".join(f"{x:.6f}" for x in query)
    sql = (
        f"SELECT id FROM vectors "
        f"ORDER BY vec <-> '{vector_literal}'::PASE ASC LIMIT 10"
    )
    print("\nSQL executed on the generalized engine:")
    print(f"  {sql[:74]}...")
    print("  plan: " + gen.db.explain(sql).splitlines()[-1].strip())
    start = time.perf_counter()
    rows = gen.db.query(sql)
    search_gen = time.perf_counter() - start
    gen_ids = [r[0] for r in rows]
    print(f"generalized engine: build {build_gen * 1e3:.0f}ms, "
          f"search {search_gen * 1e3:.2f}ms -> {gen_ids[:5]}...\n")

    # --- the paper's point --------------------------------------------
    overlap = len(set(spec_result.ids) & set(gen_ids))
    print(f"result overlap between engines: {overlap}/10 "
          "(same algorithm, different substrate)")
    print(f"build gap:  generalized / specialized = {build_gen / build_spec:.1f}x")
    print(f"search gap: generalized / specialized = {search_gen / search_spec:.1f}x")
    print("\nEvery factor behind those gaps is an implementation issue —")
    print("run examples/root_cause_tour.py to see each one isolated.")


if __name__ == "__main__":
    main()
