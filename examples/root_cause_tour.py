"""A guided tour of the paper's seven root causes, measured live.

For each root cause (Sec. IX-B) this script runs the smallest
experiment that exhibits it on a scaled-down dataset, prints the
measured effect, and ends with the Sec. IX-C guideline checklist that
turns the findings into a design recipe.

Run:  python examples/root_cause_tour.py
"""

from repro.common.datasets import load_dataset
from repro.common.parallel import speedups
from repro.common.profiling import Profiler
from repro.core import guidelines
from repro.core.ablation import run_ablation
from repro.core.root_causes import ROOT_CAUSES, RootCause
from repro.core.study import ComparativeStudy, GeneralizedVectorDB, SpecializedVectorDB
from repro.pase import parallel as pase_parallel
from repro.specialized import parallel as spec_parallel

PARAMS = {"clusters": 32, "sample_ratio": 0.2, "seed": 13}
PQ_PARAMS = {"clusters": 32, "m": 16, "c_pq": 128, "sample_ratio": 0.4, "seed": 13}


def banner(cause: RootCause) -> None:
    info = ROOT_CAUSES[cause]
    print(f"\n=== RC#{cause.value}: {info.title} " + "=" * max(0, 40 - len(info.title)))
    print(f"    {info.summary}")


def main() -> None:
    dataset = load_dataset("sift1m", scale=1.5e-3)
    small = load_dataset("sift1m", scale=8e-4)

    banner(RootCause.SGEMM)
    result = run_ablation(RootCause.SGEMM, dataset, dict(PARAMS))
    print(f"    build gap with SGEMM in Faiss:    {result.gap_with_cause:.1f}x")
    print(f"    build gap with SGEMM disabled:    {result.gap_without_cause:.1f}x")

    banner(RootCause.MEMORY_MANAGEMENT)
    prof = Profiler()
    study = ComparativeStudy(
        small, "hnsw", {"bnn": 10, "efb": 24, "seed": 13},
        generalized=GeneralizedVectorDB(profiler=prof),
    )
    study.compare_build()
    rows = {r.name: r for r in prof.breakdown(within="SearchNbToAdd")}
    touch = sum(rows[n].seconds for n in ("Tuple Access", "pasepfirst", "HVTGet") if n in rows)
    dist = rows["fvec_L2sqr"].seconds if "fvec_L2sqr" in rows else 0.0
    print(f"    PASE HNSW build, inside SearchNbToAdd:")
    print(f"      page indirection (Tuple Access + pasepfirst + HVTGet): {touch * 1e3:.0f}ms")
    print(f"      actual distance computation (fvec_L2sqr):              {dist * 1e3:.0f}ms")

    banner(RootCause.PARALLEL_EXECUTION)
    ivf = ComparativeStudy(dataset, "ivf_flat", dict(PARAMS))
    ivf.compare_build()
    q = dataset.queries[0]
    __, spec_curve = spec_parallel.parallel_search(ivf.specialized.index, q, 20, 10, [1, 8])
    __, pase_curve = pase_parallel.parallel_search(ivf.generalized.am, q, 20, 10, [1, 8])
    print(f"    8-thread intra-query speedup, Faiss local heaps:    "
          f"{speedups(spec_curve)[8]:.1f}x")
    print(f"    8-thread intra-query speedup, PASE global lock:     "
          f"{speedups(pase_curve)[8]:.1f}x")

    banner(RootCause.PAGE_STRUCTURE)
    hnsw = ComparativeStudy(small, "hnsw", {"bnn": 10, "efb": 24, "seed": 13})
    size = hnsw.compare_size()
    info = hnsw.generalized.index_size()
    print(f"    HNSW index size: PASE {size.generalized.allocated_mib:.1f}MiB vs "
          f"Faiss {size.specialized.allocated_mib:.2f}MiB ({size.gap:.1f}x)")
    print(f"    PASE page waste ratio: {info.waste_ratio:.0%} "
          "(24-byte neighbor tuples + one fresh page per adjacency list)")

    banner(RootCause.KMEANS_IMPLEMENTATION)
    flat = ComparativeStudy(dataset, "ivf_flat", dict(PARAMS))
    flat.compare_build()
    pase_cents = flat.generalized.pase_centroids()
    faiss_cents = flat.specialized.index.centroids
    drift = float(abs(pase_cents - faiss_cents).mean())
    print(f"    mean |PASE centroid - Faiss centroid| = {drift:.4f} "
          "(different clusters from the same data)")
    flat.transplant_centroids()
    same = flat.generalized.search(q, 10, nprobe=10).ids == flat.specialized.search(
        q, 10, nprobe=10
    ).ids
    print(f"    after transplanting PASE's centroids into Faiss: identical results = {same}")

    banner(RootCause.HEAP_SIZE)
    result = run_ablation(RootCause.HEAP_SIZE, dataset, dict(PARAMS), k=20, nprobe=10)
    print(f"    search gap with PASE's n-sized heap:   {result.gap_with_cause:.1f}x")
    print(f"    search gap with a k-sized heap (SET pase.fixed_heap): "
          f"{result.gap_without_cause:.1f}x")

    banner(RootCause.PRECOMPUTED_TABLE)
    result = run_ablation(RootCause.PRECOMPUTED_TABLE, dataset, dict(PQ_PARAMS), k=20, nprobe=5)
    print(f"    IVF_PQ search gap with the naive ADC table:     {result.gap_with_cause:.1f}x")
    print(f"    ... with the optimized (norms + inner product): {result.gap_without_cause:.1f}x")

    print("\n=== Sec. IX-C: how to bridge the gap " + "=" * 22)
    print("A future generalized vector database, scored against the guidelines:")
    print("\nfaithful PASE reproduction:")
    print(guidelines.evaluate(guidelines.PASE_PROFILE).report())
    print("\nspecialized engine (what Step#1-#5 buy you):")
    print(guidelines.evaluate(guidelines.SPECIALIZED_PROFILE).report())
    print("\nConclusion (Sec. IX-A): every root cause above is an implementation")
    print("issue — there is no fundamental limitation in supporting vector")
    print("search inside a relational database.")


if __name__ == "__main__":
    main()
