"""A full SQL session against the generalized vector database.

Reproduces the paper's Sec. II-E usage end-to-end — the exact SQL
surface PASE exposes — including the paper's own index-creation
syntax (``USING ivfflat_fun ... WITH (clustering_params = ...)``),
all three index types, EXPLAIN output, runtime ``SET`` knobs, and a
recall check against brute force.

Run:  python examples/sql_vector_search.py
"""

from repro.common.datasets import load_dataset
from repro.common.metrics import mean_recall_at_k
from repro.pgsim import PgSimDatabase


def vec(v) -> str:
    return ",".join(f"{x:.6f}" for x in v)


def main() -> None:
    dataset = load_dataset("deep1m", scale=1.5e-3)
    db = PgSimDatabase()

    print("-- schema & data ------------------------------------------")
    db.execute("CREATE TABLE items (id int, vec float[])")
    for i, v in enumerate(dataset.base):
        db.execute(f"INSERT INTO items VALUES ({i}, '{vec(v)}'::PASE)")
    count = db.execute("SELECT count(*) FROM items").scalar()
    print(f"loaded {count} rows of {dataset.dim}-dim vectors")

    print("\n-- the paper's CREATE INDEX syntax ------------------------")
    # clustering_params = '250,38': sampling ratio 250/1000, 38 clusters;
    # distance_type = 0 selects Euclidean (Sec. II-E).
    create = (
        "CREATE INDEX ivf_idx ON items USING ivfflat_fun (vec) "
        "WITH (clustering_params = '250,38', distance_type = 0, seed = 11)"
    )
    print(create)
    db.execute(create)
    db.execute(
        "CREATE INDEX hnsw_idx ON items USING hnsw_fun (vec) "
        "WITH (bnn = 12, efb = 32, seed = 11)"
    )
    print("created ivfflat_fun + hnsw_fun indexes")

    print("\n-- EXPLAIN ------------------------------------------------")
    query = dataset.queries[0]
    sql = f"SELECT id FROM items ORDER BY vec <-> '{vec(query)}'::PASE ASC LIMIT 10"
    print(db.explain(sql))

    print("\n-- search with runtime knobs ------------------------------")
    for nprobe in (4, 12, 38):
        db.execute(f"SET pase.nprobe = {nprobe}")
        results = []
        for q in dataset.queries[:10]:
            rows = db.query(
                f"SELECT id FROM items ORDER BY vec <-> '{vec(q)}'::PASE LIMIT 10"
            )
            results.append([r[0] for r in rows])
        recall = mean_recall_at_k(results, dataset.ground_truth(10)[:10], 10)
        print(f"SET pase.nprobe = {nprobe:>2}  ->  recall@10 = {recall:.3f}")

    print("\n-- mixed relational + vector query ------------------------")
    rows = db.query(
        f"SELECT id, vec <-> '{vec(query)}'::PASE AS distance FROM items "
        f"WHERE id < 500 ORDER BY vec <-> '{vec(query)}'::PASE LIMIT 5"
    )
    for row in rows:
        print(f"  id={row[0]:>4}  distance={row[1]:.4f}")

    print("\n-- buffer manager statistics (the RC#2 toll) ---------------")
    stats = db.buffer_stats
    print(f"page accesses: {stats.accesses}  (hits {stats.hits}, "
          f"misses {stats.misses}, hit ratio {stats.hit_ratio:.3f})")
    print("Every one of those accesses is indirection Faiss never pays.")


if __name__ == "__main__":
    main()
