"""RC#3 ablation: tuple-at-a-time vs batch (amgetbatch) execution.

The paper pins part of the search gap on PostgreSQL's ``amgettuple``
interface: one index-AM call, one heap round trip, one heap-tuple
decode per candidate.  ``SET enable_batch_exec = on`` switches pgsim
to the ``get_batch`` contract (candidates as NumPy arrays, heap
fetches grouped by block), quantified here on the Fig. 14 (IVF_FLAT)
and Fig. 17 (HNSW) search workloads.

Run with::

    pytest benchmarks/bench_ablation_batch_exec.py --benchmark-only
"""

import time

from conftest import EFS, K, N_QUERIES, NPROBE


def _search_all(engine, queries, **opts) -> list[list[int]]:
    return [
        [n.vector_id for n in engine.search(q, K, **opts).neighbors]
        for q in queries
    ]


def _with_batch_exec(study, enabled: bool):
    study.generalized.db.execute(
        f"SET enable_batch_exec = {'on' if enabled else 'off'}"
    )


# ----------------------------------------------------------------------
# Fig. 14 workload (IVF_FLAT on SIFT)
# ----------------------------------------------------------------------
def test_ivfflat_search_tuple_path(benchmark, ivf_study):
    _with_batch_exec(ivf_study, False)
    benchmark(
        _search_all,
        ivf_study.generalized,
        ivf_study.dataset.queries[:N_QUERIES],
        nprobe=NPROBE,
    )


def test_ivfflat_search_batch_path(benchmark, ivf_study):
    _with_batch_exec(ivf_study, True)
    try:
        benchmark(
            _search_all,
            ivf_study.generalized,
            ivf_study.dataset.queries[:N_QUERIES],
            nprobe=NPROBE,
        )
    finally:
        _with_batch_exec(ivf_study, False)


# ----------------------------------------------------------------------
# Fig. 17 workload (HNSW on SIFT)
# ----------------------------------------------------------------------
def test_hnsw_search_tuple_path(benchmark, hnsw_study):
    _with_batch_exec(hnsw_study, False)
    benchmark(
        _search_all,
        hnsw_study.generalized,
        hnsw_study.dataset.queries[:N_QUERIES],
        efs=EFS,
    )


def test_hnsw_search_batch_path(benchmark, hnsw_study):
    _with_batch_exec(hnsw_study, True)
    try:
        benchmark(
            _search_all,
            hnsw_study.generalized,
            hnsw_study.dataset.queries[:N_QUERIES],
            efs=EFS,
        )
    finally:
        _with_batch_exec(hnsw_study, False)


# ----------------------------------------------------------------------
# Shape: the batch path is a pure win on Fig. 14
# ----------------------------------------------------------------------
def test_batch_exec_shape(ivf_study):
    """>=2x faster on the IVF_FLAT Fig. 14 workload, identical rows."""
    queries = ivf_study.dataset.queries[:N_QUERIES]
    gen = ivf_study.generalized

    _with_batch_exec(ivf_study, False)
    tuple_ids = _search_all(gen, queries, nprobe=NPROBE)
    _with_batch_exec(ivf_study, True)
    batch_ids = _search_all(gen, queries, nprobe=NPROBE)
    assert batch_ids == tuple_ids, "batch path changed search results"

    def best_of(flag: bool, reps: int = 5) -> float:
        _with_batch_exec(ivf_study, flag)
        best = float("inf")
        for __ in range(reps):
            start = time.perf_counter()
            _search_all(gen, queries, nprobe=NPROBE)
            best = min(best, time.perf_counter() - start)
        return best

    tuple_t = best_of(False)
    batch_t = best_of(True)
    _with_batch_exec(ivf_study, False)
    speedup = tuple_t / batch_t
    assert speedup >= 2.0, (
        f"batch execution should be >=2x on Fig. 14: tuple {tuple_t * 1e3:.1f} ms, "
        f"batch {batch_t * 1e3:.1f} ms ({speedup:.2f}x)"
    )


def test_batch_exec_shape_hnsw(hnsw_study):
    """HNSW gains less (graph walk stays tuple-wise) but must not
    regress, and results stay identical."""
    queries = hnsw_study.dataset.queries[:N_QUERIES]
    gen = hnsw_study.generalized

    _with_batch_exec(hnsw_study, False)
    tuple_ids = _search_all(gen, queries, efs=EFS)
    _with_batch_exec(hnsw_study, True)
    batch_ids = _search_all(gen, queries, efs=EFS)
    assert batch_ids == tuple_ids

    def best_of(flag: bool, reps: int = 5) -> float:
        _with_batch_exec(hnsw_study, flag)
        best = float("inf")
        for __ in range(reps):
            start = time.perf_counter()
            _search_all(gen, queries, efs=EFS)
            best = min(best, time.perf_counter() - start)
        return best

    tuple_t = best_of(False)
    batch_t = best_of(True)
    _with_batch_exec(hnsw_study, False)
    assert batch_t < tuple_t * 1.2, (
        f"batch path regressed HNSW search: tuple {tuple_t * 1e3:.1f} ms, "
        f"batch {batch_t * 1e3:.1f} ms"
    )
