"""Fig. 12: IVF_PQ index size.

Paper shape: no significant difference between the systems (live
payload; page rounding shows at micro scale only).
"""


def test_fig12_size_measurement(benchmark, pq_study):
    cmp = benchmark(pq_study.compare_size)
    assert cmp.generalized.allocated_bytes > 0


def test_fig12_shape_sizes_comparable(pq_study):
    cmp = pq_study.compare_size()
    # At micro scale, page-granularity rounding (one page minimum per
    # bucket chain) inflates PASE's allocated bytes; the live payload
    # is the scale-free comparison and must be ~equal, as in Fig. 12.
    payload_gap = cmp.generalized.used_bytes / cmp.specialized.used_bytes
    assert 0.5 < payload_gap < 2.0
    assert cmp.gap < 8.0


def test_fig12_pq_smaller_than_flat(pq_study, ivf_study):
    assert (
        pq_study.compare_size().specialized.allocated_bytes
        < ivf_study.compare_size().specialized.allocated_bytes
    )
