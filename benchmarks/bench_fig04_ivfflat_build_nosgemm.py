"""Fig. 4: IVF_FLAT construction with SGEMM disabled in Faiss (RC#1).

Paper shape: without SGEMM the adding phases converge (gap ~1x).
"""

import pytest

from conftest import IVF_PARAMS
from repro.core.study import GeneralizedVectorDB, SpecializedVectorDB


@pytest.fixture(scope="module")
def measured(sift):
    gen = GeneralizedVectorDB()
    gen.load(sift.base)
    gen_stats = gen.create_index("ivf_flat", **IVF_PARAMS)
    spec = SpecializedVectorDB()
    spec.load(sift.base)
    spec_stats = spec.create_index("ivf_flat", use_sgemm=False, **IVF_PARAMS)
    return gen_stats, spec_stats


def test_fig4_faiss_build_nosgemm(benchmark, sift):
    def build():
        spec = SpecializedVectorDB()
        spec.load(sift.base)
        return spec.create_index("ivf_flat", use_sgemm=False, **IVF_PARAMS)

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_fig4_shape_adding_gap_closes(measured):
    gen, spec = measured
    ratio = gen.add_seconds / spec.add_seconds
    assert 0.4 < ratio < 3.0  # converged, vs >3x with SGEMM on
