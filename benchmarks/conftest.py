"""Shared fixtures for the per-figure/table benchmark suite.

Each ``bench_*`` file regenerates one artifact of the paper at a
micro scale chosen so the whole suite runs in minutes.  Builds that
several figures share (notably the slow page-backed HNSW build) are
session-scoped fixtures.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.common.datasets import Dataset, load_dataset
from repro.common.obs import write_bench_json
from repro.core.study import ComparativeStudy, GeneralizedVectorDB, SpecializedVectorDB

#: Scale relative to the paper's dataset sizes (SIFT1M -> 1000 rows).
BENCH_SCALE = 1e-3

#: Smaller still for graph builds, which dominate suite runtime.
HNSW_SCALE = 6e-4

IVF_PARAMS = {"clusters": 24, "sample_ratio": 0.25, "seed": 42}
PQ_PARAMS = {"clusters": 24, "m": 16, "c_pq": 32, "sample_ratio": 0.5, "seed": 42}
HNSW_PARAMS = {"bnn": 12, "efb": 32, "seed": 42}

K = 20
NPROBE = 8
EFS = 60
N_QUERIES = 8


@pytest.fixture(scope="session")
def sift() -> Dataset:
    return load_dataset("sift1m", scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def deep() -> Dataset:
    return load_dataset("deep1m", scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def sift_hnsw() -> Dataset:
    return load_dataset("sift1m", scale=HNSW_SCALE)


def build_study(dataset: Dataset, index_type: str, params: dict) -> ComparativeStudy:
    study = ComparativeStudy(dataset, index_type, dict(params))
    study.compare_build()
    return study


@pytest.fixture(scope="session")
def ivf_study(sift) -> ComparativeStudy:
    """IVF_FLAT built on both engines (shared by search/size benches)."""
    return build_study(sift, "ivf_flat", IVF_PARAMS)


@pytest.fixture(scope="session")
def pq_study(sift) -> ComparativeStudy:
    return build_study(sift, "ivf_pq", PQ_PARAMS)


@pytest.fixture(scope="session")
def hnsw_study(sift_hnsw) -> ComparativeStudy:
    return build_study(sift_hnsw, "hnsw", HNSW_PARAMS)


def search_batch(engine, queries, k=K, **opts) -> None:
    """One timed unit of work: a small query batch on one engine."""
    for q in queries:
        engine.search(q, k, **opts)


def emit_bench(workload: str, **kwargs):
    """Write the unified ``BENCH_<workload>.json`` result file.

    Thin alias for :func:`repro.common.obs.write_bench_json` so every
    bench module reports through one schema; the output directory
    follows ``$BENCH_RESULTS_DIR`` (CI sets it to the artifact dir).
    """
    return write_bench_json(workload, **kwargs)


def metrics_extras(db) -> dict:
    """Observability attachment for a bench's ``extra`` block.

    ``metrics_snapshot`` is the final scrape flattened to plain
    counters/gauges (histogram series dropped — they would bloat the
    JSON); ``slow_queries`` is the top-5 of ``pg_slow_queries`` with
    plan text omitted.  The trend gate renders the slow queries under
    a regressed workload, so a latency regression in CI arrives with
    the offending statements attached.
    """
    from repro.common.metrics_export import parse_exposition

    snapshot: dict[str, float] = {}
    for sample in parse_exposition(db.metrics_text()).samples:
        if sample.name.endswith(("_bucket", "_sum", "_count")):
            continue
        key = sample.name
        if sample.labels:
            key += "{" + ",".join(f"{k}={v}" for k, v in sorted(sample.labels.items())) + "}"
        snapshot[key] = sample.value
    slow = [
        {
            "query": rec.query,
            "kind": rec.kind,
            "session": rec.session,
            "elapsed_ms": rec.elapsed_ms,
            "rows": rec.rows,
            "rc_top": rec.rc_top(),
        }
        for rec in db.slowlog.top(5)
    ]
    return {"metrics_snapshot": snapshot, "slow_queries": slow}
