"""Fig. 14: IVF_FLAT search time, PASE vs Faiss.

Paper shape: PASE 2.0x-3.4x slower (larger in Python, same ordering).
"""

from conftest import K, N_QUERIES, NPROBE, emit_bench, search_batch


def test_fig14_pase_search(benchmark, ivf_study):
    benchmark(
        search_batch,
        ivf_study.generalized,
        ivf_study.dataset.queries[:N_QUERIES],
        nprobe=NPROBE,
    )


def test_fig14_faiss_search(benchmark, ivf_study):
    benchmark(
        search_batch,
        ivf_study.specialized,
        ivf_study.dataset.queries[:N_QUERIES],
        nprobe=NPROBE,
    )


def test_fig14_shape(ivf_study):
    cmp = ivf_study.compare_search(k=K, nprobe=NPROBE, n_queries=N_QUERIES, recall=True)
    assert cmp.gap > 1.5
    assert cmp.generalized_recall == cmp.specialized_recall or abs(
        cmp.generalized_recall - cmp.specialized_recall
    ) < 0.3


def test_fig14_emit_bench_json(ivf_study):
    """Report the PASE side through the unified BENCH_*.json schema,
    with the counter deltas the observability layer attributes to the
    query batch."""
    gen = ivf_study.generalized
    queries = ivf_study.dataset.queries[:N_QUERIES]
    buffers_before = gen.db.buffer.stats.snapshot()
    scans_before = gen.am.scan_stats.snapshot()
    latencies = []
    for q in queries:
        result = gen.search(q, K, nprobe=NPROBE)
        latencies.append(result.elapsed_seconds)
    path = emit_bench(
        "fig14_ivfflat_search",
        params={
            "engine": gen.name,
            "dataset": ivf_study.dataset.name,
            "k": K,
            "nprobe": NPROBE,
            "n_queries": len(queries),
        },
        latencies_seconds=latencies,
        counters={
            "buffer": gen.db.buffer.stats.delta(buffers_before),
            "index": gen.am.scan_stats.delta(scans_before),
        },
    )
    assert path.exists()
