"""Fig. 14: IVF_FLAT search time, PASE vs Faiss.

Paper shape: PASE 2.0x-3.4x slower (larger in Python, same ordering).
"""

from conftest import K, N_QUERIES, NPROBE, search_batch


def test_fig14_pase_search(benchmark, ivf_study):
    benchmark(
        search_batch,
        ivf_study.generalized,
        ivf_study.dataset.queries[:N_QUERIES],
        nprobe=NPROBE,
    )


def test_fig14_faiss_search(benchmark, ivf_study):
    benchmark(
        search_batch,
        ivf_study.specialized,
        ivf_study.dataset.queries[:N_QUERIES],
        nprobe=NPROBE,
    )


def test_fig14_shape(ivf_study):
    cmp = ivf_study.compare_search(k=K, nprobe=NPROBE, n_queries=N_QUERIES, recall=True)
    assert cmp.gap > 1.5
    assert cmp.generalized_recall == cmp.specialized_recall or abs(
        cmp.generalized_recall - cmp.specialized_recall
    ) < 0.3
