"""Fig. 3: IVF_FLAT construction time, PASE vs Faiss.

Paper shape: PASE is 35.0x-84.8x slower; the adding phase dominates.
(The absolute factor compresses in Python; the ordering and the
adding-phase dominance must hold.)
"""

import pytest

from conftest import IVF_PARAMS
from repro.core.study import GeneralizedVectorDB, SpecializedVectorDB


@pytest.fixture(scope="module")
def measured(sift):
    gen = GeneralizedVectorDB()
    gen.load(sift.base)
    gen_stats = gen.create_index("ivf_flat", **IVF_PARAMS)
    spec = SpecializedVectorDB()
    spec.load(sift.base)
    spec_stats = spec.create_index("ivf_flat", **IVF_PARAMS)
    return gen_stats, spec_stats


def test_fig3_pase_build(benchmark, sift):
    def build():
        gen = GeneralizedVectorDB()
        gen.load(sift.base)
        return gen.create_index("ivf_flat", **IVF_PARAMS)

    stats = benchmark.pedantic(build, rounds=1, iterations=1)
    assert stats.vectors_added == sift.n


def test_fig3_faiss_build(benchmark, sift):
    def build():
        spec = SpecializedVectorDB()
        spec.load(sift.base)
        return spec.create_index("ivf_flat", **IVF_PARAMS)

    stats = benchmark.pedantic(build, rounds=1, iterations=1)
    assert stats.vectors_added == sift.n


def test_fig3_shape_pase_slower(measured):
    gen, spec = measured
    assert gen.total_seconds > spec.total_seconds


def test_fig3_shape_adding_gap_dominates(measured):
    """The gap lives in the adding phase (SGEMM vs per-row loops)."""
    gen, spec = measured
    assert gen.add_seconds / spec.add_seconds > 3.0
