"""Fig. 11: IVF_FLAT index size.

Paper shape: almost the same in PASE and Faiss — the page layout
aligns with the memory layout for this index.
"""


def test_fig11_size_measurement(benchmark, ivf_study):
    cmp = benchmark(ivf_study.compare_size)
    assert cmp.generalized.allocated_bytes > 0


def test_fig11_shape_sizes_comparable(ivf_study):
    cmp = ivf_study.compare_size()
    assert 0.7 < cmp.gap < 2.0  # paper: ~1x
