"""Fig. 15: IVF_FLAT search with PASE's centroids transplanted (RC#5).

Paper shape: with identical clusters (Faiss*), the remaining gap is
pure tuple access + heap, and PASE/Faiss* results match exactly.
"""

import pytest

from conftest import IVF_PARAMS, K, N_QUERIES, NPROBE
from repro.core.study import ComparativeStudy


@pytest.fixture(scope="module")
def transplanted(sift):
    study = ComparativeStudy(sift, "ivf_flat", dict(IVF_PARAMS))
    study.compare_build()
    study.transplant_centroids()
    return study


def test_fig15_faiss_star_search(benchmark, transplanted):
    spec = transplanted.specialized

    def run():
        for q in transplanted.dataset.queries[:N_QUERIES]:
            spec.search(q, K, nprobe=NPROBE)

    benchmark(run)


def test_fig15_shape_identical_results_after_transplant(transplanted):
    for q in transplanted.dataset.queries[:4]:
        gen_ids = transplanted.generalized.search(q, K, nprobe=NPROBE).ids
        spec_ids = transplanted.specialized.search(q, K, nprobe=NPROBE).ids
        assert gen_ids == spec_ids


def test_fig15_shape_gap_still_present(transplanted):
    """Even with RC#5 removed, RC#2/RC#6 keep PASE slower."""
    cmp = transplanted.compare_search(k=K, nprobe=NPROBE, n_queries=N_QUERIES)
    assert cmp.gap > 1.5
