"""Fig. 19: search gap vs nprobe (IVF) and efs (HNSW).

Paper shape: IVF_FLAT gap roughly flat in nprobe; IVF_PQ gap grows;
HNSW gap grows with efs.
"""

from conftest import K, N_QUERIES


def _gap(study, **kw):
    return study.compare_search(k=K, n_queries=N_QUERIES, **kw).gap


def test_fig19_nprobe_sweep_flat(benchmark, ivf_study):
    gaps = benchmark.pedantic(
        lambda: [_gap(ivf_study, nprobe=p) for p in (4, 8, 16)],
        rounds=1,
        iterations=1,
    )
    assert all(g > 1.0 for g in gaps)


def test_fig19_shape_pq_gap_grows_or_holds(pq_study):
    low = _gap(pq_study, nprobe=4)
    high = _gap(pq_study, nprobe=16)
    assert high > low * 0.7  # grows (or holds within noise)


def test_fig19_shape_hnsw_gap_present_across_efs(hnsw_study):
    for efs in (16, 60):
        assert _gap(hnsw_study, nprobe=None, efs=efs) > 1.3
