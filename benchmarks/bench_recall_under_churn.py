"""Recall under streaming churn: the paper's missing maintenance axis.

The figures in the paper benchmark freshly built indexes; this bench
measures what a long-lived deployment sees instead.  For IVF_FLAT and
HNSW it bulk-loads a base table, builds the index, then drives an
interleaved UPDATE/DELETE/INSERT/k-NN stream (op count controlled by
``$CHURN_STRESS_OPS`` — CI's soak knob) and records recall@10 against
a brute-force oracle at four checkpoints:

- **fresh** — right after the build (the paper's number);
- **post_churn** — after the stream, tombstones still in the index
  (the snapshot filter hides them, at extra candidate cost);
- **post_vacuum** — after VACUUM compacts lists / repairs the graph;
- **rebuild** — a fresh index over the identical final data, the
  upper bound VACUUM is held to (within 2 points, same criterion as
  ``tests/test_churn.py``).

Search latency is sampled throughout the churn stream, so the emitted
``BENCH_recall_under_churn.json`` (repro-bench/v1, trend-gated in CI)
also tracks the p99 cost of searching through tombstones.
"""

import os
import time

import numpy as np

from conftest import emit_bench, metrics_extras
from repro.bench.report import write_report
from repro.common.datasets import tiny_dataset
from repro.pgsim import PgSimDatabase

N = 400
DIM = 16
K = 10
NPROBE = 6
N_QUERIES = 16
CHURN_OPS = int(os.environ.get("CHURN_STRESS_OPS", "120"))

AMS = {
    "pase_ivfflat": "WITH (clusters = 12, sample_ratio = 0.5, seed = 42)",
    "pase_hnsw": "WITH (bnn = 8, efb = 40, seed = 42)",
}

#: op-kind wheel per 8 churn ops: 3 updates, 2 deletes, 1 insert, 2 searches.
WHEEL = (
    "update", "delete", "search", "update",
    "insert", "delete", "update", "search",
)


def _lit(vec: np.ndarray) -> str:
    return ",".join(f"{x:.6f}" for x in np.asarray(vec, dtype=np.float32))


def _recall(db: PgSimDatabase, live: dict[int, np.ndarray], queries) -> float:
    hits = 0
    for q in queries:
        got = [
            r[0]
            for r in db.query(
                f"SELECT id FROM items ORDER BY vec <-> '{_lit(q)}'::PASE LIMIT {K}"
            )
        ]
        truth = sorted(live, key=lambda i: (float(np.sum((live[i] - q) ** 2)), i))[:K]
        hits += len(set(got) & set(truth))
    return hits / (K * len(queries))


def _run_am(am: str, opts: str, latencies: list[float]) -> dict:
    dataset = tiny_dataset(n=N, dim=DIM, n_queries=N_QUERIES, seed=7)
    rng = np.random.default_rng(7)
    db = PgSimDatabase(buffer_pool_pages=512)
    db.execute("CREATE TABLE items (id INT4, vec FLOAT4[])")
    table = db.catalog.table("items")
    live: dict[int, np.ndarray] = {}
    for i, vec in enumerate(dataset.base):
        table.heap.insert([i, vec], xid=1)
        live[i] = np.asarray(vec, dtype=np.float32)
    db.wal.log_commit(1)
    db.execute(f"CREATE INDEX ix ON items USING {am} (vec) {opts}")
    db.execute("ANALYZE items")
    db.execute(f"SET pase.nprobe = {NPROBE}")
    db.execute("SET enable_seqscan = off")
    # Live observability on for the whole churn run: every statement
    # logs (the top-5 ride along in the BENCH JSON), and a quarter of
    # the top-k scans are re-answered by the brute-force oracle into
    # pg_stat_vector_quality — the online counterpart of the explicit
    # recall checkpoints below.
    db.execute("SET log_min_duration_statement = 0")
    db.execute("SET vector_quality_probe_rate = 0.25")
    db.execute("SET vector_quality_probe_seed = 7")
    # Time-series layer on as well: the ASH sampler and stat-history
    # ring run across the whole churn stream and land in the workload
    # report artifact written by the test body.
    db.execute("SET ash_sampling_interval_ms = 2")
    db.execute("SET stat_history_interval_ms = 50")
    db.execute("SET estimation_probe_rate = 0.25")
    db.execute("SET estimation_probe_seed = 7")
    db.execute("SET ash_enable = on")
    queries = [np.asarray(q, dtype=np.float32) for q in dataset.queries]

    def churn_vector() -> np.ndarray:
        # Stay in-distribution: perturb a random base row rather than
        # sampling fresh noise, like re-embedding a drifting document.
        base = dataset.base[int(rng.integers(0, len(dataset.base)))]
        return (base + 0.05 * rng.normal(size=DIM)).astype(np.float32)

    result = {"recall_fresh": _recall(db, live, queries)}
    next_id = N
    counts = {"update": 0, "delete": 0, "insert": 0, "search": 0}
    for op in range(CHURN_OPS):
        kind = WHEEL[op % len(WHEEL)]
        if kind in ("update", "delete") and not live:
            kind = "insert"
        if kind == "update":
            target = int(rng.choice(list(live)))
            vec = churn_vector()
            db.execute(f"UPDATE items SET vec = '{_lit(vec)}'::PASE WHERE id = {target}")
            live[target] = vec
        elif kind == "delete":
            target = int(rng.choice(list(live)))
            db.execute(f"DELETE FROM items WHERE id = {target}")
            del live[target]
        elif kind == "insert":
            vec = churn_vector()
            db.execute(f"INSERT INTO items VALUES ({next_id}, '{_lit(vec)}'::PASE)")
            live[next_id] = vec
            next_id += 1
        else:
            q = queries[op % len(queries)]
            start = time.perf_counter()
            db.query(
                f"SELECT id FROM items ORDER BY vec <-> '{_lit(q)}'::PASE LIMIT {K}"
            )
            latencies.append(time.perf_counter() - start)
        counts[kind] += 1

    result["recall_post_churn"] = _recall(db, live, queries)
    result["n_dead_before_vacuum"] = table.heap.n_dead_tup
    db.execute("VACUUM items")
    result["recall_post_vacuum"] = _recall(db, live, queries)
    db.execute("DROP INDEX ix")
    db.execute(f"CREATE INDEX ix ON items USING {am} (vec) {opts}")
    result["recall_rebuild"] = _recall(db, live, queries)
    result.update({f"ops_{kind}": n for kind, n in counts.items()})
    # Columns: index, am, probes, mean_recall, min_recall, last_recall
    # ("index" is reserved in the SQL grammar, hence SELECT *).
    result["online_quality"] = [
        {"index": row[0], "am": row[1], "probes": row[2], "mean_recall": row[3]}
        for row in db.query("SELECT * FROM pg_stat_vector_quality")
    ]
    result.update(metrics_extras(db))
    db.execute("SET ash_enable = off")  # joins the sampler thread
    result["ash_samples"] = db.ash.total_samples
    # Per-AM workload report artifact (uploaded by CI): joins the ASH
    # wait profile, stat history, slow queries, estimation errors and
    # online recall for this churn run.
    report_path = write_report(db, f"churn_{am}")
    assert report_path.exists()
    db.close()
    return result


def test_recall_under_churn():
    latencies: list[float] = []
    per_am = {am: _run_am(am, opts, latencies) for am, opts in AMS.items()}

    for am, r in per_am.items():
        # The acceptance bar from tests/test_churn.py, re-checked at
        # bench scale: VACUUM restores recall to ~rebuild quality.
        assert r["recall_post_vacuum"] >= r["recall_rebuild"] - 0.02, (am, r)

    path = emit_bench(
        "recall_under_churn",
        params={
            "n": N,
            "dim": DIM,
            "k": K,
            "nprobe": NPROBE,
            "churn_ops": CHURN_OPS,
            "n_queries": N_QUERIES,
            "ams": sorted(AMS),
        },
        latencies_seconds=latencies,
        counters={
            f"{am}_{key}": r[key]
            for am, r in per_am.items()
            for key in ("n_dead_before_vacuum", "ops_update", "ops_delete")
        },
        extra=per_am,
    )
    assert path.exists()
