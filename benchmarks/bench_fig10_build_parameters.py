"""Fig. 10: construction gap vs c (IVF) and bnn (HNSW).

Paper shape: the gap grows as c and bnn grow.
"""

import pytest

from repro.common.datasets import load_dataset
from repro.core.study import ComparativeStudy


@pytest.fixture(scope="module")
def tiny_sift():
    return load_dataset("sift1m", scale=6e-4)


def _build_gap(dataset, index_type, **params):
    study = ComparativeStudy(dataset, index_type, params)
    return study.compare_build().gap


def test_fig10_gap_sweep_c(benchmark, tiny_sift):
    def sweep():
        return [
            _build_gap(tiny_sift, "ivf_flat", clusters=c, sample_ratio=0.3, seed=42)
            for c in (8, 24, 48)
        ]

    gaps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(gaps) == 3


def test_fig10_shape_pq_gap_grows_with_c(tiny_sift):
    small = _build_gap(tiny_sift, "ivf_pq", clusters=8, m=16, c_pq=32, sample_ratio=0.5, seed=42)
    large = _build_gap(tiny_sift, "ivf_pq", clusters=48, m=16, c_pq=32, sample_ratio=0.5, seed=42)
    assert large > small * 0.8  # growth, modulo micro-scale noise


def test_fig10_shape_hnsw_gap_present_at_all_bnn(tiny_sift):
    for bnn in (8, 16):
        gap = _build_gap(tiny_sift, "hnsw", bnn=bnn, efb=24, seed=42)
        assert gap > 1.2
