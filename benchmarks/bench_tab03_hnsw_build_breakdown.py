"""Table III: time breakdown of HNSW building on SIFT.

Paper shape: SearchNbToAdd dominates both systems (~70-76%), with
PASE's absolute time several times Faiss's.

The build is recorded with tracer-backed profilers and the Table III
shape assertions run against the profile *regenerated from the span
tree*, proving the spans carry the full build timeline.
"""

import pytest

from conftest import HNSW_PARAMS
from repro.common.graph import SEC_SEARCH_NB_TO_ADD
from repro.common.profiling import Profiler
from repro.common.tracing import Tracer
from repro.core.study import ComparativeStudy, GeneralizedVectorDB, SpecializedVectorDB


@pytest.fixture(scope="module")
def profiles(sift_hnsw):
    profs = {"PASE": Profiler(tracer=Tracer()), "Faiss": Profiler(tracer=Tracer())}
    study = ComparativeStudy(
        sift_hnsw,
        "hnsw",
        dict(HNSW_PARAMS),
        generalized=GeneralizedVectorDB(profiler=profs["PASE"]),
        specialized=SpecializedVectorDB(profiler=profs["Faiss"]),
    )
    study.compare_build()
    # Table III from spans, not the live aggregate counters.
    return {name: prof.tracer.to_profiler() for name, prof in profs.items()}


def test_tab3_profiled_build(benchmark, sift_hnsw):
    def build():
        prof = Profiler()
        gen = GeneralizedVectorDB(profiler=prof)
        gen.load(sift_hnsw.base)
        gen.create_index("hnsw", **HNSW_PARAMS)
        return prof

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_tab3_searchnbtoadd_dominates_both(profiles):
    for prof in profiles.values():
        rows = {r.name: r.fraction for r in prof.breakdown()}
        assert max(rows, key=rows.get) == SEC_SEARCH_NB_TO_ADD


def test_tab3_pase_absolute_time_larger(profiles):
    pase = profiles["PASE"].inclusive_seconds(SEC_SEARCH_NB_TO_ADD)
    faiss = profiles["Faiss"].inclusive_seconds(SEC_SEARCH_NB_TO_ADD)
    assert pase > faiss * 1.5
