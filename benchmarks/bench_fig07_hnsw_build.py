"""Fig. 7: HNSW construction time, PASE vs Faiss (RC#2).

Paper shape: PASE 1.6x-8.7x slower; the cause is buffer-manager
page indirection, not distance arithmetic.
"""

from conftest import HNSW_PARAMS
from repro.core.study import GeneralizedVectorDB, SpecializedVectorDB


def test_fig7_pase_build(benchmark, sift_hnsw):
    def build():
        gen = GeneralizedVectorDB()
        gen.load(sift_hnsw.base)
        return gen.create_index("hnsw", **HNSW_PARAMS)

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_fig7_faiss_build(benchmark, sift_hnsw):
    def build():
        spec = SpecializedVectorDB()
        spec.load(sift_hnsw.base)
        return spec.create_index("hnsw", **HNSW_PARAMS)

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_fig7_shape(hnsw_study):
    cmp = hnsw_study.compare_build()
    assert 1.3 < cmp.gap < 30.0  # paper: 1.6x-8.7x
