"""Hybrid filtered vector search: three-way strategy sweep.

Sweeps ``WHERE a < cut ORDER BY vec <-> q LIMIT k`` over filter
selectivities of 0.1%, 1%, 10%, 50% and 90%, timing each of the three
filtered-search strategies (pre-filter, post-filter, in-filter) forced
through the ``filtered_search_strategy`` GUC plus the planner's
cost-based ``auto`` pick.  Asserts the crossover the optimizer exists
to exploit — pre-filter empirically fastest at <= 1% selectivity,
post- or in-filter fastest at >= 50% — and that auto's latency lands
within 25% of the per-point fastest strategy at every swept
selectivity.  Reports pooled auto-mode per-query latency through the
repro-bench/v1 schema (gated by the CI trend check) plus per-strategy
medians and the strategy each selectivity chose.
"""

import statistics
import time

from conftest import emit_bench
from repro.common.datasets import tiny_dataset
from repro.pgsim import PgSimDatabase

N = 2000
DIM = 16
#: k equals the 1%-selectivity match count (20 of 2000 rows), so the
#: in-filter traversal cannot stop early at the low end of the sweep —
#: surfacing every match means widening across nearly all lists, which
#: is exactly the regime where pre-filter's single heap pass wins.
K = 20
N_QUERIES = 6
#: Fraction of rows satisfying ``a < cut`` (a is uniform 0..999).
SELECTIVITIES = (0.001, 0.01, 0.10, 0.50, 0.90)
STRATEGIES = ("pre-filter", "post-filter", "in-filter")
#: Auto must land within 25% of the fastest forced strategy (the
#: acceptance window), plus a small absolute slack for timer noise on
#: millisecond-scale runs.
AUTO_WINDOW = 1.25
NOISE_S = 5e-4

INDEX_OPTIONS = "clusters = 16, sample_ratio = 1.0, seed = 42"


def _build_db() -> tuple[PgSimDatabase, list[str]]:
    """Load the shared micro dataset, index it, ANALYZE, return queries."""
    dataset = tiny_dataset(n=N, dim=DIM, n_queries=N_QUERIES, seed=1234)
    db = PgSimDatabase(buffer_pool_pages=512)
    db.execute("CREATE TABLE items (a INT4, vec FLOAT4[])")
    table = db.catalog.table("items")
    for i, vec in enumerate(dataset.base):
        table.heap.insert([i % 1000, vec], xid=1)
    db.wal.log_commit(1)
    db.execute(f"CREATE INDEX ix ON items USING pase_ivfflat (vec) WITH ({INDEX_OPTIONS})")
    db.execute("ANALYZE items")
    db.execute("SET pase.nprobe = 4")
    queries = [",".join(f"{x:.6f}" for x in q) for q in dataset.queries]
    return db, queries


def _hybrid_sql(literal: str, cut: int) -> str:
    return (
        f"SELECT a FROM items WHERE a < {cut} "
        f"ORDER BY vec <-> '{literal}'::PASE LIMIT {K}"
    )


def _median_latency(db: PgSimDatabase, queries: list[str], cut: int) -> float:
    """Median per-query latency (seconds) after one warm-up pass."""
    for literal in queries:
        db.execute(_hybrid_sql(literal, cut))
    samples: list[float] = []
    for literal in queries:
        sql = _hybrid_sql(literal, cut)
        start = time.perf_counter()
        rows = db.query(sql)
        samples.append(time.perf_counter() - start)
        # Exact-k acceptance: each value of a occurs N/1000 times, so
        # cut * N/1000 rows match the filter.
        matching = cut * N // 1000
        assert len(rows) == min(K, matching), (cut, len(rows))
        assert all(a < cut for (a,) in rows)
    return statistics.median(samples)


def _auto_strategy(db: PgSimDatabase, sql: str) -> str:
    for line in db.explain(sql).splitlines():
        line = line.strip().lstrip("-> ")
        if line.startswith("Strategy:"):
            return line.split(":", 1)[1].strip()
    raise AssertionError("EXPLAIN output has no Strategy line")


def test_hybrid_filtered_search_sweep():
    """Time the three-way sweep, check the crossover, emit bench JSON."""
    db, queries = _build_db()
    auto_latencies: list[float] = []
    medians: dict[str, float] = {}
    picks: dict[str, str] = {}
    for sel in SELECTIVITIES:
        cut = max(1, round(sel * 1000))
        per_strategy: dict[str, float] = {}
        for strategy in STRATEGIES:
            db.execute(f"SET filtered_search_strategy = '{strategy}'")
            try:
                per_strategy[strategy] = _median_latency(db, queries, cut)
            finally:
                db.execute("SET filtered_search_strategy = 'auto'")
        picks[f"sel{sel:g}"] = _auto_strategy(db, _hybrid_sql(queries[0], cut))
        # Warm pass inside _median_latency keeps auto's numbers honest.
        auto_median = _median_latency(db, queries, cut)
        for literal in queries:
            sql = _hybrid_sql(literal, cut)
            start = time.perf_counter()
            db.query(sql)
            auto_latencies.append(time.perf_counter() - start)

        fastest = min(per_strategy, key=per_strategy.get)
        for strategy, median in per_strategy.items():
            medians[f"sel{sel:g}_{strategy}_ms"] = median * 1e3
        medians[f"sel{sel:g}_auto_ms"] = auto_median * 1e3

        # The three-way crossover itself.
        if sel <= 0.01:
            assert fastest == "pre-filter", (sel, per_strategy)
        if sel >= 0.50:
            assert fastest in ("post-filter", "in-filter"), (sel, per_strategy)
        # Auto within the acceptance window of the per-point fastest.
        floor = per_strategy[fastest]
        assert auto_median <= floor * AUTO_WINDOW + NOISE_S, (
            sel,
            picks[f"sel{sel:g}"],
            auto_median,
            per_strategy,
        )

    path = emit_bench(
        "hybrid_filtered_search",
        params={
            "n": N,
            "dim": DIM,
            "k": K,
            "n_queries": N_QUERIES,
            "selectivities": list(SELECTIVITIES),
            "strategies": list(STRATEGIES),
            "index": f"pase_ivfflat ({INDEX_OPTIONS}), nprobe = 4",
        },
        latencies_seconds=auto_latencies,
        extra={"per_strategy_median_ms": medians, "auto_picks": picks},
    )
    assert path.exists()
