"""Hybrid filtered vector search: latency vs WHERE-clause selectivity.

Sweeps ``WHERE a < cut AND ORDER BY vec <-> q LIMIT k`` over filter
selectivities of 1%, 10%, 50% and 90% for IVF_FLAT and HNSW after
ANALYZE, exercising the three-stage optimizer end to end: at high
selectivity the planner pushes the filter into an over-fetching index
scan; at low selectivity it flips to seq-scan + sort.  Reports pooled
per-query latency through the repro-bench/v1 schema (gated by the CI
trend check) plus per-configuration means and the plan each
selectivity chose.
"""

import time

from conftest import emit_bench
from repro.common.datasets import tiny_dataset
from repro.pgsim import PgSimDatabase

N = 600
DIM = 16
K = 10
N_QUERIES = 6
#: Fraction of rows satisfying the WHERE clause (a is uniform 0..99).
SELECTIVITIES = (0.01, 0.10, 0.50, 0.90)

AM_SPECS = {
    "ivf_flat": ("pase_ivfflat", "clusters = 16, sample_ratio = 0.5, seed = 42"),
    "hnsw": ("pase_hnsw", "bnn = 12, efb = 32, seed = 42"),
}


def _build_db(amname: str, options: str) -> tuple[PgSimDatabase, list[str]]:
    """Load the shared micro dataset, index it, ANALYZE, return queries."""
    dataset = tiny_dataset(n=N, dim=DIM, n_queries=N_QUERIES, seed=1234)
    db = PgSimDatabase(buffer_pool_pages=512)
    db.execute("CREATE TABLE items (a INT4, vec FLOAT4[])")
    table = db.catalog.table("items")
    for i, vec in enumerate(dataset.base):
        table.heap.insert([i % 100, vec], xid=1)
    db.wal.log_commit(1)
    db.execute(f"CREATE INDEX ix ON items USING {amname} (vec) WITH ({options})")
    db.execute("ANALYZE items")
    queries = [",".join(f"{x:.6f}" for x in q) for q in dataset.queries]
    return db, queries


def _hybrid_sql(literal: str, cut: int) -> str:
    return (
        f"SELECT a FROM items WHERE a < {cut} "
        f"ORDER BY vec <-> '{literal}'::PASE LIMIT {K}"
    )


def test_hybrid_filtered_search_sweep():
    """Time the selectivity sweep for both AMs and emit the bench JSON."""
    all_latencies: list[float] = []
    per_config: dict[str, float] = {}
    plans: dict[str, str] = {}
    for label, (amname, options) in AM_SPECS.items():
        db, queries = _build_db(amname, options)
        for sel in SELECTIVITIES:
            cut = max(1, round(sel * 100))
            for literal in queries:  # warm buffers and plan paths
                db.execute(_hybrid_sql(literal, cut))
            plan = db.explain(_hybrid_sql(queries[0], cut))
            plans[f"{label}_sel{sel:g}"] = (
                "index_scan" if "Index Scan" in plan else "seq_scan"
            )
            config_lat: list[float] = []
            for literal in queries:
                sql = _hybrid_sql(literal, cut)
                start = time.perf_counter()
                rows = db.query(sql)
                config_lat.append(time.perf_counter() - start)
                # Exact-k acceptance: every value of a occurs N/100
                # times, so cut * N/100 rows match the filter.
                matching = cut * N // 100
                assert len(rows) == min(K, matching), (label, sel, len(rows))
                assert all(a < cut for (a,) in rows)
            per_config[f"{label}_sel{sel:g}_ms"] = (
                sum(config_lat) / len(config_lat) * 1e3
            )
            all_latencies.extend(config_lat)
        # The cost-based flip itself (IVF is deterministic at this
        # scale; HNSW's ef-bounded cost sits near the crossover, so
        # only the endpoints are pinned for it via exact-k above).
        if label == "ivf_flat":
            assert plans["ivf_flat_sel0.01"] == "seq_scan"
            assert plans["ivf_flat_sel0.9"] == "index_scan"

    path = emit_bench(
        "hybrid_filtered_search",
        params={
            "n": N,
            "dim": DIM,
            "k": K,
            "n_queries": N_QUERIES,
            "selectivities": list(SELECTIVITIES),
            "ams": sorted(AM_SPECS),
        },
        latencies_seconds=all_latencies,
        extra={"per_config_mean_ms": per_config, "plans": plans},
    )
    assert path.exists()
