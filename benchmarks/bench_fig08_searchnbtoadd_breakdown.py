"""Fig. 8: time breakdown inside SearchNbToAdd.

Paper shape: the absolute fvec_L2sqr time is similar in both systems
(114s vs 107s in the paper), while PASE adds large Tuple Access /
HVTGet / pasepfirst overheads on top.

The breakdown is regenerated from recorded spans (tracer-backed
profilers), so the same numbers drive the flamegraph/chrome-trace
exports.
"""

import pytest

from conftest import HNSW_PARAMS
from repro.common.graph import (
    SEC_DISTANCE,
    SEC_NEIGHBOR_FETCH,
    SEC_SEARCH_NB_TO_ADD,
    SEC_TUPLE_ACCESS,
    SEC_VISITED,
)
from repro.common.profiling import Profiler
from repro.common.tracing import Tracer
from repro.core.study import ComparativeStudy, GeneralizedVectorDB, SpecializedVectorDB


@pytest.fixture(scope="module")
def profiles(sift_hnsw):
    profs = {"PASE": Profiler(tracer=Tracer()), "Faiss": Profiler(tracer=Tracer())}
    study = ComparativeStudy(
        sift_hnsw,
        "hnsw",
        dict(HNSW_PARAMS),
        generalized=GeneralizedVectorDB(profiler=profs["PASE"]),
        specialized=SpecializedVectorDB(profiler=profs["Faiss"]),
    )
    study.compare_build()
    # Regenerate the Fig. 8 drill-down from the span trees.
    return {
        name: {
            r.name: r.seconds
            for r in prof.tracer.to_profiler().breakdown(within=SEC_SEARCH_NB_TO_ADD)
        }
        for name, prof in profs.items()
    }


def test_fig8_distance_time_similar_absolute(profiles):
    pase_dist = profiles["PASE"].get(SEC_DISTANCE, 0.0)
    faiss_dist = profiles["Faiss"].get(SEC_DISTANCE, 0.0)
    assert 0.4 < pase_dist / faiss_dist < 2.5


def test_fig8_pase_indirection_dominates(profiles):
    """Tuple Access + pasepfirst + HVTGet dwarf distance time in PASE."""
    pase = profiles["PASE"]
    indirection = (
        pase.get(SEC_TUPLE_ACCESS, 0.0)
        + pase.get(SEC_NEIGHBOR_FETCH, 0.0)
        + pase.get(SEC_VISITED, 0.0)
    )
    assert indirection > 2.0 * pase.get(SEC_DISTANCE, 0.0)


def test_fig8_faiss_indirection_small(profiles):
    faiss = profiles["Faiss"]
    assert faiss.get(SEC_NEIGHBOR_FETCH, 0.0) < faiss.get(SEC_DISTANCE, 1e9) * 1.5
