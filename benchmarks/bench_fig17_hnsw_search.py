"""Fig. 17: HNSW search time, PASE vs Faiss.

Paper shape: PASE 2.2x-7.3x slower, almost entirely tuple access (RC#2).
"""

from conftest import EFS, K, N_QUERIES, search_batch


def test_fig17_pase_search(benchmark, hnsw_study):
    benchmark(
        search_batch,
        hnsw_study.generalized,
        hnsw_study.dataset.queries[:N_QUERIES],
        efs=EFS,
    )


def test_fig17_faiss_search(benchmark, hnsw_study):
    benchmark(
        search_batch,
        hnsw_study.specialized,
        hnsw_study.dataset.queries[:N_QUERIES],
        efs=EFS,
    )


def test_fig17_shape(hnsw_study):
    cmp = hnsw_study.compare_search(k=K, nprobe=None, efs=EFS, n_queries=N_QUERIES)
    assert 1.5 < cmp.gap < 30.0
