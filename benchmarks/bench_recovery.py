"""Recovery benchmark: WAL replay throughput and checkpoint truncation.

Two questions, both prerequisites for running pgsim under sustained
write traffic:

1. **How fast is redo?**  ``replay`` throughput in records/second over
   a synthetic committed-insert log — the time-to-recover after a
   crash is this number times the log length.
2. **Does checkpointing bound the log?**  The same SQL workload run
   with and without periodic ``checkpoint()`` calls, comparing WAL
   record counts, on-disk log size, and the redo work left for a
   subsequent recovery.  Without truncation both grow without bound;
   with it they stay within one checkpoint interval.

Run with::

    pytest benchmarks/bench_recovery.py --benchmark-only -s
"""

import pytest

from repro.pgsim import PgSimDatabase
from repro.pgsim.storage import MemoryDisk
from repro.pgsim.wal import WriteAheadLog, replay

#: Synthetic replay workload: one insert + one commit per transaction.
N_TXNS = 2_000
ROWS_PER_PAGE = 50

#: SQL workload for the truncation comparison.
N_ROWS = 200
CHECKPOINT_EVERY = 25


@pytest.fixture(scope="module")
def committed_wal() -> WriteAheadLog:
    wal = WriteAheadLog()
    payload = bytes(64)
    for xid in range(1, N_TXNS + 1):
        wal.log_insert(xid, "t.heap", (xid - 1) // ROWS_PER_PAGE, payload)
        wal.log_commit(xid)
    wal.flush()
    return wal


def test_replay_throughput(benchmark, committed_wal):
    """Redo rate over a committed-insert log (records applied/s)."""

    def run():
        return replay(committed_wal, MemoryDisk())

    applied = benchmark(run)
    assert applied == N_TXNS


def test_replay_idempotent_rerun_is_cheap(benchmark, committed_wal):
    """Re-running redo over already-recovered pages applies nothing —
    the page-LSN check should make it far cheaper than the first pass."""
    disk = MemoryDisk()
    assert replay(committed_wal, disk) == N_TXNS

    applied = benchmark(replay, committed_wal, disk)
    assert applied == 0


def _run_insert_workload(datadir, checkpoint_every: int | None) -> PgSimDatabase:
    db = PgSimDatabase(data_dir=datadir, buffer_pool_pages=64)
    db.execute("CREATE TABLE t (id int, vec float[])")
    for i in range(N_ROWS):
        db.execute(f"INSERT INTO t VALUES ({i}, '{i}.0,1.0,2.0,3.0'::PASE)")
        if checkpoint_every is not None and i % checkpoint_every == checkpoint_every - 1:
            db.checkpoint()
    return db


def test_shape_checkpoint_truncation_bounds_log(tmp_path):
    """WAL record count and on-disk size must shrink versus the
    no-truncation baseline, and recovery redo work along with them."""
    baseline = _run_insert_workload(tmp_path / "no-ckpt", None)
    truncated = _run_insert_workload(tmp_path / "ckpt", CHECKPOINT_EVERY)

    base_records, base_bytes = len(baseline.wal), baseline.wal.disk_size()
    trunc_records, trunc_bytes = len(truncated.wal), truncated.wal.disk_size()
    base_redo = replay(WriteAheadLog(tmp_path / "no-ckpt" / "wal.log"), MemoryDisk())
    trunc_redo = replay(WriteAheadLog(tmp_path / "ckpt" / "wal.log"), MemoryDisk())

    print("\n  recovery workload: "
          f"{N_ROWS} committed inserts, checkpoint every {CHECKPOINT_EVERY}")
    print(f"  {'':14}  {'records':>8}  {'log bytes':>10}  {'redo applied':>12}")
    print(f"  {'no checkpoint':14}  {base_records:8d}  {base_bytes:10d}  {base_redo:12d}")
    print(f"  {'checkpointed':14}  {trunc_records:8d}  {trunc_bytes:10d}  {trunc_redo:12d}")

    # Bounded: at most one checkpoint interval of records remains
    # (insert + commit per row, plus the checkpoint record itself).
    assert trunc_records <= 2 * CHECKPOINT_EVERY + 1
    assert base_records >= 2 * N_ROWS
    assert trunc_bytes < base_bytes
    assert trunc_redo <= base_redo
    # Both databases still answer identically after a crash + reopen.
    del baseline, truncated
    for sub in ("no-ckpt", "ckpt"):
        db = PgSimDatabase(data_dir=tmp_path / sub, buffer_pool_pages=64)
        assert db.execute("SELECT count(*) FROM t").scalar() == N_ROWS


def test_shape_recovery_time_scales_with_log(tmp_path):
    """Reopening the checkpointed database does strictly less redo, so
    end-to-end recovery (replay + catalog rebuild) must not be slower
    by more than noise; assert only the redo-work ordering, which is
    deterministic."""
    _run_insert_workload(tmp_path / "no-ckpt", None)
    _run_insert_workload(tmp_path / "ckpt", CHECKPOINT_EVERY)
    full = WriteAheadLog(tmp_path / "no-ckpt" / "wal.log")
    trunc = WriteAheadLog(tmp_path / "ckpt" / "wal.log")
    assert len(trunc) < len(full)
    assert trunc.disk_size() < full.disk_size()
