"""Fig. 13: HNSW index size.

Paper shape: PASE 2.9x-13.3x larger (RC#4): 24-byte neighbor tuples
and one fresh page per adjacency list.
"""


def test_fig13_size_measurement(benchmark, hnsw_study):
    cmp = benchmark(hnsw_study.compare_size)
    assert cmp.generalized.page_count > 0


def test_fig13_shape_pase_much_larger(hnsw_study):
    cmp = hnsw_study.compare_size()
    assert cmp.gap > 2.5  # paper: 2.9x-13.3x


def test_fig13_waste_comes_from_neighbor_pages(hnsw_study):
    info = hnsw_study.generalized.index_size()
    assert info.detail["neighbors_pages"] > info.detail["data_pages"]
    assert info.waste_ratio > 0.5
