"""Fig. 16: IVF_PQ search time, PASE vs Faiss.

Paper shape: PASE 3.9x-11.2x slower; the naive precomputed table
(RC#7) makes the PQ gap larger than the FLAT gap.
"""

from conftest import K, N_QUERIES, NPROBE, search_batch


def test_fig16_pase_search(benchmark, pq_study):
    benchmark(
        search_batch,
        pq_study.generalized,
        pq_study.dataset.queries[:N_QUERIES],
        nprobe=NPROBE,
    )


def test_fig16_faiss_search(benchmark, pq_study):
    benchmark(
        search_batch,
        pq_study.specialized,
        pq_study.dataset.queries[:N_QUERIES],
        nprobe=NPROBE,
    )


def test_fig16_shape_gap_larger_than_flat(pq_study, ivf_study):
    pq_gap = pq_study.compare_search(k=K, nprobe=NPROBE, n_queries=N_QUERIES).gap
    flat_gap = ivf_study.compare_search(k=K, nprobe=NPROBE, n_queries=N_QUERIES).gap
    assert pq_gap > 1.5
    assert pq_gap > flat_gap * 0.8  # PQ gap at least comparable, usually larger
