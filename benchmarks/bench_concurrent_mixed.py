"""Concurrent mixed workload: open-loop multi-session throughput.

Four worker threads, each with its own `Session`, drive a precomputed
open-loop arrival schedule (target QPS) of mixed traffic -- vector
k-NN searches, autocommit inserts, and deletes of each client's own
rows -- against one `PgSimDatabase`.  Latency is measured against the
*scheduled* arrival time (completion minus arrival), so queueing
behind the global statement lock counts, exactly like an overloaded
server would show it.  The statement-lock contention recorded by the
session layer is reported alongside the latency percentiles.

Emits ``BENCH_concurrent_mixed.json`` (repro-bench/v1, trend-gated in
CI) with p50/p99 overall and per-operation-type, achieved vs target
QPS, and the wait-event breakdown.
"""

import threading
import time

from conftest import emit_bench, metrics_extras
from repro.bench.report import write_report
from repro.common.datasets import tiny_dataset
from repro.pgsim import PgSimDatabase
from repro.pgsim.xact import SerializationError

N = 400
DIM = 16
K = 10
NPROBE = 8
N_THREADS = 4
N_OPS = 160
TARGET_QPS = 200.0

#: op-kind wheel: 6 searches, 1 insert, 1 delete per 8 ops.
INSERT_SLOT = 3
DELETE_SLOT = 7


def _build_db() -> tuple[PgSimDatabase, list[str]]:
    dataset = tiny_dataset(n=N, dim=DIM, n_queries=8, seed=99)
    db = PgSimDatabase(buffer_pool_pages=512)
    db.execute("CREATE TABLE items (id INT4, vec FLOAT4[])")
    table = db.catalog.table("items")
    for i, vec in enumerate(dataset.base):
        table.heap.insert([i, vec], xid=1)
    db.wal.log_commit(1)
    db.execute(
        "CREATE INDEX ix ON items USING pase_ivfflat (vec) "
        "WITH (clusters = 16, sample_ratio = 0.5, seed = 42)"
    )
    db.execute("ANALYZE items")
    db.execute(f"SET pase.nprobe = {NPROBE}")
    literals = [",".join(f"{x:.6f}" for x in v) for v in dataset.base]
    return db, literals


def _op_kind(op: int) -> str:
    slot = op % 8
    if slot == INSERT_SLOT:
        return "insert"
    if slot == DELETE_SLOT:
        return "delete"
    return "search"


def test_concurrent_mixed_open_loop():
    db, literals = _build_db()
    search_sql = [
        f"SELECT id FROM items ORDER BY vec <-> '{lit}'::PASE LIMIT {K}"
        for lit in literals[:8]
    ]
    # Warm plans and buffers single-threaded before the clock starts.
    for sql in search_sql:
        db.query(sql)
    # Statement logging on for the contended phase: the slowest
    # statements land in pg_slow_queries and ride along in the BENCH
    # JSON (rendered by the trend gate on a regression).
    db.execute("SET log_min_duration_statement = 0")
    # Time-series layer on for the contended phase: the ASH sampler
    # snapshots backend states (including SessionStatementLock waits),
    # stat history records counter deltas, and estimation probes feed
    # pg_stat_estimation_errors — all of it lands in the workload
    # report attached as a CI artifact below.
    db.execute("SET ash_sampling_interval_ms = 2")
    db.execute("SET stat_history_interval_ms = 50")
    db.execute("SET estimation_probe_rate = 0.25")
    db.execute("SET ash_enable = on")

    samples: dict[str, list[float]] = {"search": [], "insert": [], "delete": []}
    lock = threading.Lock()
    errors: list[Exception] = []
    conflicts = [0]
    start = time.perf_counter()

    def worker(tid: int) -> None:
        session = db.session(f"client-{tid}")
        inserted: list[int] = []
        local: list[tuple[str, float]] = []
        try:
            for op in range(tid, N_OPS, N_THREADS):
                kind = _op_kind(op)
                if kind == "insert":
                    row_id = N + op
                    sql = f"INSERT INTO items VALUES ({row_id}, '{literals[op % N]}'::PASE)"
                elif kind == "delete" and inserted:
                    sql = f"DELETE FROM items WHERE id = {inserted.pop(0)}"
                elif kind == "delete":
                    kind = "search"
                    sql = search_sql[op % len(search_sql)]
                else:
                    sql = search_sql[op % len(search_sql)]
                arrival = op / TARGET_QPS
                delay = start + arrival - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                try:
                    session.execute(sql)
                except SerializationError:
                    with lock:
                        conflicts[0] += 1
                    continue
                if kind == "insert":
                    inserted.append(N + op)
                local.append((kind, time.perf_counter() - (start + arrival)))
        except Exception as exc:  # pragma: no cover - failure detail
            with lock:
                errors.append(exc)
        with lock:
            for kind, latency in local:
                samples[kind].append(latency)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    db.execute("SET ash_enable = off")  # joins the sampler thread
    assert not errors, errors[0]

    all_samples = [lat for kinds in samples.values() for lat in kinds]
    n_done = len(all_samples)
    assert n_done + conflicts[0] == N_OPS

    # Serial oracle for the final committed state: the base load plus
    # every acknowledged insert minus every acknowledged delete.
    expected = N + len(samples["insert"]) - len(samples["delete"])
    count = db.execute("SELECT count(*) FROM items").scalar()
    assert count == expected, (count, expected)

    waits = {
        row[1]: {"type": row[0], "count": row[2], "total_ms": row[3]}
        for row in db.query(
            "SELECT wait_event_type, wait_event, count, total_ms FROM pg_stat_wait_events"
        )
    }
    contention = waits.get("SessionStatementLock", {"count": 0, "total_ms": 0.0})

    def pct(kind: str, q: float) -> float:
        ordered = sorted(samples[kind])
        if not ordered:
            return 0.0
        return ordered[min(int(q * len(ordered)), len(ordered) - 1)] * 1e3

    path = emit_bench(
        "concurrent_mixed",
        params={
            "n": N,
            "dim": DIM,
            "k": K,
            "nprobe": NPROBE,
            "threads": N_THREADS,
            "ops": N_OPS,
            "target_qps": TARGET_QPS,
        },
        latencies_seconds=all_samples,
        counters={
            "searches": len(samples["search"]),
            "inserts": len(samples["insert"]),
            "deletes": len(samples["delete"]),
            "serialization_conflicts": conflicts[0],
            "stmt_lock_waits": contention["count"],
        },
        extra={
            "achieved_qps": n_done / elapsed if elapsed > 0 else 0.0,
            "stmt_lock_wait_ms": contention["total_ms"],
            "per_kind_ms": {
                f"{kind}_p50_ms": pct(kind, 0.50) for kind in samples
            }
            | {f"{kind}_p99_ms": pct(kind, 0.99) for kind in samples},
            "wait_events": waits,
        }
        | metrics_extras(db)
        | {
            "ash_samples": db.ash.total_samples,
            "history_ticks": db.stat_history.total_ticks,
            "estimation_records": db.executor.estimation.total_recorded,
        },
    )
    assert path.exists()

    # Workload report artifact: the one-page join of ASH, stat
    # history, slow queries, estimation errors, and recall quality,
    # uploaded by CI next to the BENCH JSON.
    report_path = write_report(db, "concurrent_mixed")
    assert report_path.exists()
    report_text = report_path.read_text()
    assert "pg_wait_profile" in report_text
    assert "pg_stat_estimation_errors" in report_text
    db.close()
