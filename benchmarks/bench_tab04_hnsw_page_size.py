"""Table IV: PASE HNSW size at 8KB vs 4KB pages.

Paper shape: halving the page size roughly halves the index.
"""

import pytest

from conftest import HNSW_PARAMS
from repro.core.study import GeneralizedVectorDB


@pytest.fixture(scope="module")
def sizes(sift_hnsw):
    out = {}
    for page_size in (8192, 4096):
        gen = GeneralizedVectorDB(page_size=page_size)
        gen.load(sift_hnsw.base)
        gen.create_index("hnsw", **HNSW_PARAMS)
        out[page_size] = gen.index_size().allocated_bytes
    return out


def test_tab4_build_4kb(benchmark, sift_hnsw):
    def build():
        gen = GeneralizedVectorDB(page_size=4096)
        gen.load(sift_hnsw.base)
        gen.create_index("hnsw", **HNSW_PARAMS)
        return gen.index_size()

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_tab4_shape_half_page_half_size(sizes):
    ratio = sizes[8192] / sizes[4096]
    assert 1.4 < ratio < 2.2  # paper: 1.41x-1.87x
