"""Beyond the paper's measurements: the Sec. IX-C recipe, built & measured.

The paper's conclusion is that a generalized vector database following
Steps #1-#5 can match a specialized one.  ``repro.bridged`` implements
that recipe behind the same SQL surface; this bench measures the
remaining gap and asserts it is a small fraction of faithful PASE's.
"""

import time

import pytest

from conftest import IVF_PARAMS, K, N_QUERIES, NPROBE
from repro.core.study import GeneralizedVectorDB, SpecializedVectorDB


def _generalized(sift, am_name):
    gen = GeneralizedVectorDB()
    gen.load(sift.base)
    opts = ", ".join(f"{k} = {v}" for k, v in IVF_PARAMS.items())
    gen.db.execute(
        f"CREATE INDEX {gen.index_name} ON {gen.table_name} USING {am_name} (vec) WITH ({opts})"
    )
    gen.am = gen.db.catalog.find_index(gen.index_name).am
    gen.db.execute(f"SET pase.nprobe = {NPROBE}")
    return gen


@pytest.fixture(scope="module")
def engines(sift):
    spec = SpecializedVectorDB()
    spec.load(sift.base)
    spec.create_index("ivf_flat", **IVF_PARAMS)
    return {
        "pase": _generalized(sift, "pase_ivfflat"),
        "bridged": _generalized(sift, "bridged_ivfflat"),
        "faiss": spec,
    }


def _mean_latency(engine, queries):
    start = time.perf_counter()
    for q in queries:
        engine.search(q, K, nprobe=NPROBE)
    return (time.perf_counter() - start) / len(queries)


def test_bridged_search(benchmark, engines, sift):
    gen = engines["bridged"]

    def run():
        for q in sift.queries[:N_QUERIES]:
            gen.search(q, K, nprobe=NPROBE)

    benchmark(run)


def test_bridged_build(benchmark, sift):
    benchmark.pedantic(lambda: _generalized(sift, "bridged_ivfflat"), rounds=1, iterations=1)


def test_bridged_shape_gap_mostly_closed(engines, sift):
    """The headline: bridged lands far closer to Faiss than PASE does."""
    queries = sift.queries[:N_QUERIES]
    pase = _mean_latency(engines["pase"], queries)
    bridged = _mean_latency(engines["bridged"], queries)
    faiss = _mean_latency(engines["faiss"], queries)
    assert bridged < pase / 2  # most of the gap gone
    assert bridged / faiss < (pase / faiss) / 2


def test_bridged_shape_same_results_as_faiss_clusters_allow(engines, sift):
    """Full probing makes all three engines exact and identical."""
    gen = engines["bridged"]
    gen.db.execute("SET pase.nprobe = 1000")
    truth = sift.ground_truth(K)
    for qi in range(3):
        ids = gen.search(sift.queries[qi], K).ids
        assert ids == truth[qi].tolist()
    gen.db.execute(f"SET pase.nprobe = {NPROBE}")
