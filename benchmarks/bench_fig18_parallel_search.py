"""Fig. 18: intra-query parallel search scaling (RC#3).

Paper shape: Faiss (local heaps) scales nearly linearly; PASE (global
locked heap) stays flat.
"""

import pytest

from conftest import K, NPROBE
from repro.common.parallel import speedups
from repro.pase import parallel as pase_parallel
from repro.specialized import parallel as spec_parallel

THREADS = [1, 2, 4, 8]


@pytest.fixture(scope="module")
def curves(ivf_study):
    query = ivf_study.dataset.queries[0]
    __, spec_curve = spec_parallel.parallel_search(
        ivf_study.specialized.index, query, K, NPROBE, THREADS
    )
    __, pase_curve = pase_parallel.parallel_search(
        ivf_study.generalized.am, query, K, NPROBE, THREADS
    )
    return speedups(spec_curve), speedups(pase_curve)


def test_fig18_faiss_parallel(benchmark, ivf_study):
    query = ivf_study.dataset.queries[1]
    benchmark(
        spec_parallel.parallel_search,
        ivf_study.specialized.index,
        query,
        K,
        NPROBE,
        THREADS,
    )


def test_fig18_pase_parallel(benchmark, ivf_study):
    query = ivf_study.dataset.queries[1]
    benchmark(
        pase_parallel.parallel_search,
        ivf_study.generalized.am,
        query,
        K,
        NPROBE,
        THREADS,
    )


def test_fig18_shape_faiss_scales_pase_flat(curves):
    spec, pase = curves
    # Local heaps scale; the global locked heap falls clearly behind
    # (thresholds kept loose: unit costs are measured under load).
    assert spec[8] > 2.0
    assert spec[8] > pase[8] + 0.3


def test_fig18_results_correct_under_parallelism(ivf_study):
    query = ivf_study.dataset.queries[2]
    spec_res, __ = spec_parallel.parallel_search(
        ivf_study.specialized.index, query, K, NPROBE, THREADS
    )
    serial = ivf_study.specialized.search(query, K, nprobe=NPROBE)
    assert spec_res.ids == serial.ids
