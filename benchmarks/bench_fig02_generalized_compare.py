"""Fig. 2: generalized vector databases compared (PASE vs pgvector).

Paper shape: PASE is the fastest open-sourced generalized system;
pgvector trails because its index stores only TIDs and must fetch
every candidate's vector from the heap table.
"""

import pytest

from conftest import IVF_PARAMS, K, N_QUERIES, NPROBE
from repro.core.study import GeneralizedVectorDB


@pytest.fixture(scope="module")
def engines(sift):
    out = {}
    for label, am in (("pase", "pase_ivfflat"), ("pgvector", "ivfflat")):
        gen = GeneralizedVectorDB()
        gen.load(sift.base)
        opts = ", ".join(f"{k} = {v}" for k, v in IVF_PARAMS.items())
        gen.db.execute(
            f"CREATE INDEX {gen.index_name} ON {gen.table_name} USING {am} (vec) WITH ({opts})"
        )
        gen.am = gen.db.catalog.find_index(gen.index_name).am
        out[label] = gen
    return out


def test_fig2_pase_search(benchmark, engines, sift):
    gen = engines["pase"]

    def run():
        for q in sift.queries[:N_QUERIES]:
            gen.search(q, K, nprobe=NPROBE)

    benchmark(run)


def test_fig2_pgvector_search(benchmark, engines, sift):
    gen = engines["pgvector"]

    def run():
        for q in sift.queries[:N_QUERIES]:
            gen.search(q, K, nprobe=NPROBE)

    benchmark(run)


def test_fig2_shape_pase_faster(engines, sift):
    import time

    times = {}
    for label, gen in engines.items():
        start = time.perf_counter()
        for q in sift.queries[:N_QUERIES]:
            gen.search(q, K, nprobe=NPROBE)
        times[label] = time.perf_counter() - start
    assert times["pase"] < times["pgvector"]
