"""Table V: IVF_FLAT search-time breakdown.

Paper shape: Faiss spends ~95% in fvec_L2sqr; PASE's distance share is
much lower, with large Tuple Access and Min-heap shares.

Since the tracing PR the PASE profile is span-backed: the breakdown
below is *regenerated from the recorded span tree* (not the live
aggregate counters), the same spans also produce the RC#1–RC#7
attribution and a chrome-trace timeline emitted next to the
``BENCH_*.json`` results for CI artifact upload.
"""

import json
import os
from pathlib import Path

import pytest

from conftest import IVF_PARAMS, K, N_QUERIES, NPROBE, emit_bench
from repro.common.obs import BENCH_DIR_ENV
from repro.common.profiling import Profiler
from repro.common.tracing import Tracer
from repro.core.rc_attribution import attribute_profile, format_rc_breakdown
from repro.core.root_causes import RootCause
from repro.core.study import ComparativeStudy, GeneralizedVectorDB, SpecializedVectorDB


@pytest.fixture(scope="module")
def profilers(sift):
    profs = {
        "PASE": Profiler(tracer=Tracer()),
        "Faiss": Profiler(tracer=Tracer()),
    }
    study = ComparativeStudy(
        sift,
        "ivf_flat",
        dict(IVF_PARAMS),
        generalized=GeneralizedVectorDB(profiler=profs["PASE"]),
        specialized=SpecializedVectorDB(profiler=profs["Faiss"]),
    )
    study.compare_search(k=K, nprobe=NPROBE, n_queries=N_QUERIES)
    return profs


@pytest.fixture(scope="module")
def profiles(profilers):
    """Breakdown rows regenerated from each engine's span tree."""
    return {
        name: {r.name: r for r in prof.tracer.to_profiler().breakdown()}
        for name, prof in profilers.items()
    }


def test_tab5_profiled_search(benchmark, ivf_study):
    prof = Profiler()
    ivf_study.generalized.am.profiler = prof

    def run():
        for q in ivf_study.dataset.queries[:N_QUERIES]:
            ivf_study.generalized.search(q, K, nprobe=NPROBE)

    benchmark(run)
    ivf_study.generalized.am.profiler = Profiler(enabled=False)


def test_tab5_shape_faiss_distance_dominates(profiles):
    faiss = profiles["Faiss"]
    assert faiss["fvec_L2sqr"].fraction > 0.35
    assert faiss["fvec_L2sqr"].fraction == max(r.fraction for r in faiss.values())


def test_tab5_shape_pase_tuple_access_large(profiles):
    pase = profiles["PASE"]
    assert pase["Tuple Access"].fraction > 0.2
    assert pase["Min-heap"].fraction > 0.05
    # PASE's distance share is well below Faiss's.
    assert pase["fvec_L2sqr"].fraction < profiles["Faiss"]["fvec_L2sqr"].fraction


def test_tab5_spans_agree_with_aggregate(profilers):
    """Span-derived totals must match the live aggregate counters."""
    for prof in profilers.values():
        assert prof.tracer.spans
        span_total = prof.tracer.to_profiler().total_seconds()
        assert span_total == pytest.approx(prof.total_seconds(), rel=0.05)


def test_tab5_rc_attribution_from_spans(profilers):
    """The paper's Table V conclusions, restated as an RC attribution."""
    attribution = attribute_profile(profilers["PASE"].tracer)
    assert attribution.buckets
    # Buckets partition the recorded span time exactly.
    assert sum(b.seconds for b in attribution.buckets) == pytest.approx(
        attribution.total_seconds
    )
    # PASE search pays RC#2 (page indirection) and RC#6 (size-n heap).
    assert attribution.seconds_for(RootCause.MEMORY_MANAGEMENT) > 0
    assert attribution.seconds_for(RootCause.HEAP_SIZE) > 0
    report = format_rc_breakdown(attribution, title="Table V (PASE, from spans):")
    assert "RC#2" in report and "RC#6" in report

    tracer = profilers["PASE"].tracer
    out_dir = Path(os.environ.get(BENCH_DIR_ENV, "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = out_dir / "TRACE_tab05_ivfflat_search.json"
    trace_path.write_text(tracer.to_chrome_trace() + "\n")
    json.loads(trace_path.read_text())  # artifact must be valid JSON
    emit_bench(
        "tab05_rc_breakdown",
        params=dict(IVF_PARAMS, k=K, nprobe=NPROBE, n_queries=N_QUERIES),
        counters={"spans": len(tracer.spans)},
        extra={
            "rc_attribution": attribution.as_dict(),
            "report": report,
            "chrome_trace": trace_path.name,
        },
    )
