"""Table V: IVF_FLAT search-time breakdown.

Paper shape: Faiss spends ~95% in fvec_L2sqr; PASE's distance share is
much lower, with large Tuple Access and Min-heap shares.
"""

import pytest

from conftest import IVF_PARAMS, K, N_QUERIES, NPROBE
from repro.common.profiling import Profiler
from repro.core.study import ComparativeStudy, GeneralizedVectorDB, SpecializedVectorDB


@pytest.fixture(scope="module")
def profiles(sift):
    profs = {"PASE": Profiler(), "Faiss": Profiler()}
    study = ComparativeStudy(
        sift,
        "ivf_flat",
        dict(IVF_PARAMS),
        generalized=GeneralizedVectorDB(profiler=profs["PASE"]),
        specialized=SpecializedVectorDB(profiler=profs["Faiss"]),
    )
    study.compare_search(k=K, nprobe=NPROBE, n_queries=N_QUERIES)
    return {
        name: {r.name: r for r in prof.breakdown()} for name, prof in profs.items()
    }


def test_tab5_profiled_search(benchmark, ivf_study):
    prof = Profiler()
    ivf_study.generalized.am.profiler = prof

    def run():
        for q in ivf_study.dataset.queries[:N_QUERIES]:
            ivf_study.generalized.search(q, K, nprobe=NPROBE)

    benchmark(run)
    ivf_study.generalized.am.profiler = Profiler(enabled=False)


def test_tab5_shape_faiss_distance_dominates(profiles):
    faiss = profiles["Faiss"]
    assert faiss["fvec_L2sqr"].fraction > 0.35
    assert faiss["fvec_L2sqr"].fraction == max(r.fraction for r in faiss.values())


def test_tab5_shape_pase_tuple_access_large(profiles):
    pase = profiles["PASE"]
    assert pase["Tuple Access"].fraction > 0.2
    assert pase["Min-heap"].fraction > 0.05
    # PASE's distance share is well below Faiss's.
    assert pase["fvec_L2sqr"].fraction < profiles["Faiss"]["fvec_L2sqr"].fraction
