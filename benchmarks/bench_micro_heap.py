"""Microbench: size-k vs size-n top-k heaps (RC#6 in isolation).

Strips away everything but the two heap designs: push one million-ish
precomputed distances through each and compare.  This is the pure data
-structure cost Table V's Min-heap column samples in situ.
"""

import numpy as np
import pytest

from repro.common.heap import BoundedMaxHeap, NaiveTopK

N = 30_000
K = 100


@pytest.fixture(scope="module")
def dists():
    return np.random.default_rng(5).random(N).tolist()


def _run_bounded(dists):
    heap = BoundedMaxHeap(K)
    worst = heap.worst_distance
    for i, d in enumerate(dists):
        if d < worst:
            heap.push(d, i)
            worst = heap.worst_distance
    return heap.results()


def _run_naive(dists):
    heap = NaiveTopK(K)
    for i, d in enumerate(dists):
        heap.push(d, i)
    return heap.results()


def test_micro_k_sized_heap(benchmark, dists):
    results = benchmark(_run_bounded, dists)
    assert len(results) == K


def test_micro_n_sized_heap(benchmark, dists):
    results = benchmark(_run_naive, dists)
    assert len(results) == K


def test_shape_same_answers(dists):
    assert [n.distance for n in _run_bounded(list(dists))] == [
        n.distance for n in _run_naive(list(dists))
    ]


def test_shape_work_asymmetry(dists):
    """The designs' *work* differs even where wall-clock is muddied by
    interpreter costs: the n-heap performs one push per candidate, the
    k-heap touches the heap a few hundred times."""
    bounded = BoundedMaxHeap(K)
    worst = bounded.worst_distance
    pushes = 0
    for i, d in enumerate(dists):
        if d < worst:
            bounded.push(d, i)
            worst = bounded.worst_distance
            pushes += 1
    naive = NaiveTopK(K)
    for i, d in enumerate(dists):
        naive.push(d, i)
    assert naive.pushes == N
    assert pushes < N // 20
