"""Beyond the paper: per-root-cause ablation benches.

DESIGN.md calls out the toggles; this bench quantifies how much of the
gap each one closes (supplementing Figs. 4/6/15 and Sec. IX-B).
"""

import pytest

from conftest import IVF_PARAMS, K, N_QUERIES, NPROBE
from repro.core.ablation import run_ablation
from repro.core.root_causes import RootCause


def test_ablation_sgemm(benchmark, sift):
    result = benchmark.pedantic(
        lambda: run_ablation(RootCause.SGEMM, sift, dict(IVF_PARAMS)),
        rounds=1,
        iterations=1,
    )
    assert result.gap_without_cause < result.gap_with_cause


def test_ablation_heap_size(sift):
    result = run_ablation(
        RootCause.HEAP_SIZE, sift, dict(IVF_PARAMS), k=K, nprobe=NPROBE, n_queries=N_QUERIES
    )
    # The k-heap must not make PASE slower; usually it helps a little.
    assert result.gap_without_cause < result.gap_with_cause * 1.3


def test_ablation_pctable(sift):
    params = {"clusters": 24, "m": 16, "c_pq": 32, "sample_ratio": 0.5, "seed": 42}
    result = run_ablation(
        RootCause.PRECOMPUTED_TABLE, sift, params, k=K, nprobe=NPROBE, n_queries=N_QUERIES
    )
    assert result.gap_without_cause < result.gap_with_cause * 1.2


def test_architectural_causes_measured_elsewhere(sift):
    for cause in (RootCause.MEMORY_MANAGEMENT, RootCause.PARALLEL_EXECUTION, RootCause.PAGE_STRUCTURE):
        with pytest.raises(KeyError):
            run_ablation(cause, sift, {})
