"""Beyond the paper's evaluation: IVF_SQ8 (named in its Sec. II-B).

The paper's index taxonomy lists IVF_SQ8 among the quantization
indexes but does not benchmark it.  This bench completes the family:
the same engine comparison on scalar quantization, expecting IVF_FLAT-
like gaps (sequential access pattern) with 4x smaller code payloads.
"""

import pytest

from conftest import IVF_PARAMS, K, N_QUERIES, NPROBE
from repro.core.study import ComparativeStudy


@pytest.fixture(scope="module")
def sq8_study(sift):
    study = ComparativeStudy(sift, "ivf_sq8", dict(IVF_PARAMS))
    study.compare_build()
    return study


def test_sq8_pase_search(benchmark, sq8_study):
    def run():
        for q in sq8_study.dataset.queries[:N_QUERIES]:
            sq8_study.generalized.search(q, K, nprobe=NPROBE)

    benchmark(run)


def test_sq8_faiss_search(benchmark, sq8_study):
    def run():
        for q in sq8_study.dataset.queries[:N_QUERIES]:
            sq8_study.specialized.search(q, K, nprobe=NPROBE)

    benchmark(run)


def test_sq8_shape_gap_like_flat(sq8_study):
    cmp = sq8_study.compare_search(k=K, nprobe=NPROBE, n_queries=N_QUERIES, recall=True)
    assert cmp.gap > 1.5
    # Recall at partial probing is set by nprobe, not by quantization
    # loss — and it matches across engines (modulo RC#5 centroids).
    assert cmp.generalized_recall > 0.6
    assert abs(cmp.generalized_recall - cmp.specialized_recall) < 0.2


def test_sq8_shape_codes_quarter_size(sq8_study):
    spec_info = sq8_study.specialized.index_size()
    assert spec_info.detail["codes"] * 4 == sq8_study.dataset.n * sq8_study.dataset.dim * 4
