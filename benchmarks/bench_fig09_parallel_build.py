"""Fig. 9: parallel IVF construction in Faiss, SGEMM on/off (RC#3).

Paper shape: every configuration scales with threads except IVF_FLAT
with SGEMM, whose adding phase is already too fast to benefit.
"""

import pytest

from conftest import IVF_PARAMS
from repro.core.study import make_specialized_index
from repro.specialized.parallel import simulate_parallel_build

THREADS = [1, 2, 4, 8]


def _curve(dataset, use_sgemm):
    params = dict(IVF_PARAMS)
    params["use_sgemm"] = use_sgemm
    index = make_specialized_index("ivf_flat", dataset.dim, params)
    index.train(dataset.base)
    return simulate_parallel_build(index, dataset.base, THREADS)


def test_fig9_parallel_add_with_sgemm(benchmark, sift):
    curve = benchmark.pedantic(lambda: _curve(sift, True), rounds=1, iterations=1)
    assert set(curve) == set(THREADS)


def test_fig9_parallel_add_no_sgemm(benchmark, sift):
    curve = benchmark.pedantic(lambda: _curve(sift, False), rounds=1, iterations=1)
    assert set(curve) == set(THREADS)


def test_fig9_shape_no_sgemm_scales_better(sift):
    with_sgemm = _curve(sift, True)
    without = _curve(sift, False)
    speedup_with = with_sgemm[1] / with_sgemm[8]
    speedup_without = without[1] / without[8]
    assert speedup_without > speedup_with
