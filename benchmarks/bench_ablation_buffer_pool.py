"""Design-choice ablation: buffer-pool-size sensitivity (RC#2 texture).

The paper runs with everything memory-resident; pgsim makes the buffer
pool's capacity a knob.  This bench shows PASE search cost as the pool
shrinks below the working set — page indirection turns into real
eviction traffic — while a pool that fits the index behaves like the
paper's warmed configuration.
"""

import time

import pytest

from conftest import IVF_PARAMS, K, N_QUERIES, NPROBE
from repro.core.study import GeneralizedVectorDB


def _engine(sift, pool_pages):
    gen = GeneralizedVectorDB(buffer_pool_pages=pool_pages)
    gen.load(sift.base)
    gen.create_index("ivf_flat", **IVF_PARAMS)
    gen.db.execute(f"SET pase.nprobe = {NPROBE}")
    return gen


def _mean_latency(gen, queries):
    for q in queries:  # warm
        gen.search(q, K)
    start = time.perf_counter()
    for q in queries:
        gen.search(q, K)
    return (time.perf_counter() - start) / len(queries)


@pytest.fixture(scope="module")
def engines(sift):
    return {pool: _engine(sift, pool) for pool in (16, 4096)}


def test_buffer_pool_large(benchmark, engines, sift):
    gen = engines[4096]
    benchmark(lambda: [gen.search(q, K) for q in sift.queries[:N_QUERIES]])


def test_buffer_pool_tiny(benchmark, engines, sift):
    gen = engines[16]
    benchmark(lambda: [gen.search(q, K) for q in sift.queries[:N_QUERIES]])


def test_shape_tiny_pool_thrashes(engines, sift):
    queries = sift.queries[:N_QUERIES]
    fast = _mean_latency(engines[4096], queries)
    slow = _mean_latency(engines[16], queries)
    assert slow > fast  # evictions + re-reads cost real time
    # And the statistics show why:
    assert engines[16].db.buffer_stats.evictions > 0
    assert engines[4096].db.buffer_stats.hit_ratio > engines[16].db.buffer_stats.hit_ratio


def test_shape_results_identical_regardless_of_pool(engines, sift):
    q = sift.queries[0]
    assert engines[16].search(q, K).ids == engines[4096].search(q, K).ids
