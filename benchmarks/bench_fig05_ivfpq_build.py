"""Fig. 5: IVF_PQ construction time, PASE vs Faiss.

Paper shape: PASE 6.5x-20.2x slower, same trend as IVF_FLAT.
"""

import pytest

from conftest import PQ_PARAMS
from repro.core.study import GeneralizedVectorDB, SpecializedVectorDB


def test_fig5_pase_build(benchmark, sift):
    def build():
        gen = GeneralizedVectorDB()
        gen.load(sift.base)
        return gen.create_index("ivf_pq", **PQ_PARAMS)

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_fig5_faiss_build(benchmark, sift):
    def build():
        spec = SpecializedVectorDB()
        spec.load(sift.base)
        return spec.create_index("ivf_pq", **PQ_PARAMS)

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_fig5_shape(pq_study):
    cmp = pq_study.compare_build()
    assert cmp.gap > 1.0
