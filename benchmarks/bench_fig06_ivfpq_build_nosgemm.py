"""Fig. 6: IVF_PQ construction with SGEMM disabled in Faiss.

Paper shape: the gap becomes negligible.
"""

import pytest

from conftest import PQ_PARAMS
from repro.core.study import GeneralizedVectorDB, SpecializedVectorDB


def test_fig6_faiss_build_nosgemm(benchmark, sift):
    def build():
        spec = SpecializedVectorDB()
        spec.load(sift.base)
        return spec.create_index("ivf_pq", use_sgemm=False, **PQ_PARAMS)

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_fig6_shape_adding_gap_closes(sift):
    gen = GeneralizedVectorDB()
    gen.load(sift.base)
    gen_stats = gen.create_index("ivf_pq", **PQ_PARAMS)
    spec = SpecializedVectorDB()
    spec.load(sift.base)
    spec_stats = spec.create_index("ivf_pq", use_sgemm=False, **PQ_PARAMS)
    assert gen_stats.add_seconds / spec_stats.add_seconds < 3.0
