"""Overhead of per-query stats tracking (``track_query_stats`` GUC)
and of span tracing (``Profiler(tracer=Tracer())``).

The observability layer's acceptance bar: snapshot/delta accounting
around every statement must stay well under 10% of a Fig. 14-style SQL
search, and recording real spans for every profiler section must stay
under 10% on the batch search path. Measured as best-of-N batch times
on vs off; the assertion bounds are deliberately looser than the
target (CI timers are noisy) and the measured ratios land in
``BENCH_obs_overhead.json`` so the trend is machine-checkable across
PRs.
"""

import time

from conftest import K, N_QUERIES, NPROBE, emit_bench
from repro.common.profiling import NULL_PROFILER, Profiler
from repro.common.tracing import Tracer

REPEATS = 7


def _probe_sqls(study):
    sqls = []
    for q in study.dataset.queries[:N_QUERIES]:
        literal = ",".join(f"{x:.6f}" for x in q)
        sqls.append(
            f"SELECT id FROM vectors ORDER BY vec <-> '{literal}'::pase LIMIT {K}"
        )
    return sqls


def _best_batch_seconds(db, sqls):
    best = float("inf")
    for __ in range(REPEATS):
        start = time.perf_counter()
        for sql in sqls:
            db.execute(sql)
        best = min(best, time.perf_counter() - start)
    return best


def test_tracking_overhead(ivf_study):
    db = ivf_study.generalized.db
    db.execute(f"SET pase.nprobe = {NPROBE}")
    sqls = _probe_sqls(ivf_study)
    for sql in sqls:  # warm the buffer pool and plan paths
        db.execute(sql)

    db.execute("SET track_query_stats = on")
    tracked = _best_batch_seconds(db, sqls)
    db.execute("SET track_query_stats = off")
    untracked = _best_batch_seconds(db, sqls)
    db.execute("SET track_query_stats = on")

    ratio = tracked / untracked if untracked > 0 else 1.0
    emit_bench(
        "obs_overhead",
        params={"k": K, "nprobe": NPROBE, "n_queries": N_QUERIES, "repeats": REPEATS},
        latency={
            "tracked_ms": tracked / len(sqls) * 1e3,
            "untracked_ms": untracked / len(sqls) * 1e3,
        },
        extra={"overhead_ratio": ratio},
    )
    # Target is <1.10; the gate leaves headroom for shared-runner noise.
    assert ratio < 1.35, f"stats tracking overhead too high: {ratio:.2f}x"


def test_tracing_overhead(ivf_study):
    """Span recording must stay cheap on the batch search path.

    Compares best-of-N batch search times with a tracer-backed
    profiler installed on the PASE AM against no profiler at all — the
    full price of observability (sections + spans), not just the
    tracer increment.
    """
    db = ivf_study.generalized.db
    am = ivf_study.generalized.am
    db.execute(f"SET pase.nprobe = {NPROBE}")
    db.execute("SET enable_batch_exec = on")
    sqls = _probe_sqls(ivf_study)
    try:
        for sql in sqls:  # warm the buffer pool and plan paths
            db.execute(sql)

        tracer = Tracer()
        am.profiler = Profiler(tracer=tracer)
        traced = _best_batch_seconds(db, sqls)
        span_count = len(tracer.spans)
        am.profiler = NULL_PROFILER
        untraced = _best_batch_seconds(db, sqls)
    finally:
        am.profiler = NULL_PROFILER
        db.execute("SET enable_batch_exec = off")

    ratio = traced / untraced if untraced > 0 else 1.0
    assert span_count > 0, "tracer recorded no spans"
    emit_bench(
        "tracing_overhead",
        params={"k": K, "nprobe": NPROBE, "n_queries": N_QUERIES, "repeats": REPEATS},
        latency={
            "traced_ms": traced / len(sqls) * 1e3,
            "untraced_ms": untraced / len(sqls) * 1e3,
        },
        counters={"spans": span_count},
        extra={"overhead_ratio": ratio},
    )
    # Target is <1.10; the gate leaves headroom for shared-runner noise.
    assert ratio < 1.35, f"span tracing overhead too high: {ratio:.2f}x"


def test_live_layer_overhead(ivf_study):
    """The live serving-observability layer must stay under 10%.

    "Live layer" = everything the PR arms on the hot path even when
    nothing fires: pg_stat_activity bookkeeping around each statement,
    a 1% recall-probe sampling decision per top-k scan, an armed (but
    never crossed) ``log_min_duration_statement`` threshold, plus one
    ``metrics_text()`` scrape per batch — the always-on production
    configuration.  Compared against every surface disabled.
    """
    db = ivf_study.generalized.db
    db.execute(f"SET pase.nprobe = {NPROBE}")
    db.execute("SET track_query_stats = off")
    sqls = _probe_sqls(ivf_study)
    try:
        for sql in sqls:  # warm the buffer pool and plan paths
            db.execute(sql)

        db.execute("SET vector_quality_probe_rate = 0")
        db.execute("SET log_min_duration_statement = -1")
        baseline = _best_batch_seconds(db, sqls)

        db.execute("SET vector_quality_probe_rate = 0.01")
        db.execute("SET log_min_duration_statement = 10000")
        live = float("inf")
        for __ in range(REPEATS):
            start = time.perf_counter()
            for sql in sqls:
                db.execute(sql)
            db.metrics_text()
            live = min(live, time.perf_counter() - start)
        scrape_bytes = len(db.metrics_text())
    finally:
        db.execute("SET vector_quality_probe_rate = 0")
        db.execute("SET log_min_duration_statement = -1")
        db.execute("SET track_query_stats = on")

    ratio = live / baseline if baseline > 0 else 1.0
    emit_bench(
        "live_obs_overhead",
        params={
            "k": K,
            "nprobe": NPROBE,
            "n_queries": N_QUERIES,
            "repeats": REPEATS,
            "probe_rate": 0.01,
        },
        latency={
            "live_ms": live / len(sqls) * 1e3,
            "baseline_ms": baseline / len(sqls) * 1e3,
        },
        counters={"scrape_bytes": scrape_bytes},
        extra={"overhead_ratio": ratio},
    )
    # Target is <1.10; the gate leaves headroom for shared-runner noise.
    assert ratio < 1.35, f"live observability overhead too high: {ratio:.2f}x"


def test_ash_sampler_overhead(ivf_study):
    """The time-series layer (ASH sampler + stat history) stays under 10%.

    Runs the search batch with the background sampler snapshotting
    every 5ms and stat-history deltas every 50ms — far more aggressive
    than the 10ms/1s production defaults — against the sampler fully
    off.  The sampler reads backend fields without taking the
    statement lock, so its cost should be near-zero for the foreground
    path; this gate catches any future regression that adds a lock
    handshake to the hot path.
    """
    db = ivf_study.generalized.db
    db.execute(f"SET pase.nprobe = {NPROBE}")
    sqls = _probe_sqls(ivf_study)
    try:
        for sql in sqls:  # warm the buffer pool and plan paths
            db.execute(sql)

        db.execute("SET ash_enable = off")
        baseline = _best_batch_seconds(db, sqls)

        db.execute("SET ash_sampling_interval_ms = 5")
        db.execute("SET stat_history_interval_ms = 50")
        db.execute("SET ash_enable = on")
        sampled = _best_batch_seconds(db, sqls)
        samples_taken = db.ash.total_samples
        ticks_taken = db.stat_history.total_ticks
    finally:
        # ivf_study's database is session-scoped: leave the sampler off
        # and the intervals back at their defaults for later benches.
        db.execute("SET ash_enable = off")
        db.execute("SET ash_sampling_interval_ms = 10")
        db.execute("SET stat_history_interval_ms = 1000")

    ratio = sampled / baseline if baseline > 0 else 1.0
    emit_bench(
        "ash_sampler_overhead",
        params={
            "k": K,
            "nprobe": NPROBE,
            "n_queries": N_QUERIES,
            "repeats": REPEATS,
            "sampling_interval_ms": 5,
            "history_interval_ms": 50,
        },
        latency={
            "sampled_ms": sampled / len(sqls) * 1e3,
            "baseline_ms": baseline / len(sqls) * 1e3,
        },
        counters={"ash_samples": samples_taken, "history_ticks": ticks_taken},
        extra={"overhead_ratio": ratio},
    )
    # Target is <1.10; the gate leaves headroom for shared-runner noise.
    assert ratio < 1.35, f"ASH sampler overhead too high: {ratio:.2f}x"
