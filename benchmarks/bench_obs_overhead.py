"""Overhead of per-query stats tracking (``track_query_stats`` GUC).

The observability layer's acceptance bar: snapshot/delta accounting
around every statement must stay well under 10% of a Fig. 14-style SQL
search. Measured as best-of-N batch times with the GUC on vs off; the
assertion bound is deliberately looser than the target (CI timers are
noisy) and the measured ratio lands in ``BENCH_obs_overhead.json`` so
the trend is machine-checkable across PRs.
"""

import time

from conftest import K, N_QUERIES, NPROBE, emit_bench

REPEATS = 7


def _probe_sqls(study):
    sqls = []
    for q in study.dataset.queries[:N_QUERIES]:
        literal = ",".join(f"{x:.6f}" for x in q)
        sqls.append(
            f"SELECT id FROM vectors ORDER BY vec <-> '{literal}'::pase LIMIT {K}"
        )
    return sqls


def _best_batch_seconds(db, sqls):
    best = float("inf")
    for __ in range(REPEATS):
        start = time.perf_counter()
        for sql in sqls:
            db.execute(sql)
        best = min(best, time.perf_counter() - start)
    return best


def test_tracking_overhead(ivf_study):
    db = ivf_study.generalized.db
    db.execute(f"SET pase.nprobe = {NPROBE}")
    sqls = _probe_sqls(ivf_study)
    for sql in sqls:  # warm the buffer pool and plan paths
        db.execute(sql)

    db.execute("SET track_query_stats = on")
    tracked = _best_batch_seconds(db, sqls)
    db.execute("SET track_query_stats = off")
    untracked = _best_batch_seconds(db, sqls)
    db.execute("SET track_query_stats = on")

    ratio = tracked / untracked if untracked > 0 else 1.0
    emit_bench(
        "obs_overhead",
        params={"k": K, "nprobe": NPROBE, "n_queries": N_QUERIES, "repeats": REPEATS},
        latency={
            "tracked_ms": tracked / len(sqls) * 1e3,
            "untracked_ms": untracked / len(sqls) * 1e3,
        },
        extra={"overhead_ratio": ratio},
    )
    # Target is <1.10; the gate leaves headroom for shared-runner noise.
    assert ratio < 1.35, f"stats tracking overhead too high: {ratio:.2f}x"
