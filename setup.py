"""Setuptools shim for environments without PEP 660 editable support.

The project is configured in pyproject.toml; this file only enables
``python setup.py develop`` / legacy ``pip install -e .`` on toolchains
that lack the ``wheel`` package.
"""

from setuptools import setup

setup()
